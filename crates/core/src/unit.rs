//! The NDP unit: one DRAM bank plus its wimpy core, unit controller
//! state, task queues and load-balancing structures (Figure 4(b)).

use std::collections::{BTreeMap, VecDeque};

use ndpb_dram::{AddressMap, BankModel, BlockAddr, UnitId};
use ndpb_proto::{Mailbox, Message, MAX_MESSAGE_BYTES};
use ndpb_sim::stats::{BusyTime, Counter};
use ndpb_sim::{SimRng, SimTime};
use ndpb_sketch::{HotSketch, ReservedQueue};
use ndpb_tasks::{Task, Timestamp};

use crate::config::SystemConfig;
use crate::fasthash::{FastMap, FastSet};
use crate::metadata::LentBitmap;
use crate::steal;

/// A selection made by the gather-cost-aware steal path
/// ([`NdpUnit::choose_scheduled_out_aware`]): a scheduled block plus
/// where it must go. `pinned_recv = Some(holder)` marks a *task-only*
/// forward — the block already lives at `holder`, so no data message
/// travels and the block stays marked lent to its current holder.
#[derive(Debug, Clone)]
pub struct AwarePick {
    /// The chosen block and its departing tasks.
    pub sb: ScheduledBlock,
    /// Mandatory receiver for task-only forwards; `None` lets the
    /// bridge assign one round-robin (a normal block move).
    pub pinned_recv: Option<UnitId>,
}

/// A block chosen by a giver for lending, with the tasks that leave
/// alongside it (step ② of Figure 6).
#[derive(Debug, Clone)]
pub struct ScheduledBlock {
    /// The lent block (original address).
    pub block: BlockAddr,
    /// Tasks migrating with the block.
    pub tasks: Vec<Task>,
    /// Their cumulative workload.
    pub workload: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct Borrow {
    last_use: u64,
    pins: u64,
}

/// Per-unit statistics.
#[derive(Debug, Clone, Default)]
pub struct UnitStats {
    /// Tasks executed on this unit.
    pub tasks_executed: Counter,
    /// Tasks popped locally but re-routed because the block had moved.
    pub tasks_rerouted: Counter,
    /// Core busy time (task execution including its DRAM waits).
    pub busy: BusyTime,
    /// Bytes of task-data DRAM traffic (local accesses).
    pub dram_local_bytes: Counter,
    /// Messages pushed into the mailbox.
    pub msgs_emitted: Counter,
    /// Messages delivered to this unit.
    pub msgs_received: Counter,
    /// Core stalls due to a full mailbox.
    pub mailbox_stalls: Counter,
    /// Borrowed blocks admitted beyond nominal capacity because every
    /// candidate was pinned by queued tasks.
    pub borrow_overflows: Counter,
    /// When the unit last finished executing a task.
    pub last_finish: SimTime,
}

/// One NDP unit.
#[derive(Debug)]
pub struct NdpUnit {
    /// Unit identity.
    pub id: UnitId,
    /// The unit's DRAM bank (also the access-arbitration point).
    pub bank: BankModel,
    /// Outgoing-message ring buffer in local DRAM.
    pub mailbox: Mailbox,
    /// Messages the core produced while the mailbox was full; the core
    /// stalls until these drain (Section V-A).
    pub pending_out: VecDeque<Message>,
    /// Lent-block bitmap (home blocks currently elsewhere).
    pub is_lent: LentBitmap,
    /// Statistics.
    pub stats: UnitStats,
    /// When the core next becomes free.
    pub core_free_at: SimTime,
    /// Whether a core wake event is already scheduled.
    pub wake_scheduled: bool,

    task_queue: VecDeque<Task>,
    future: BTreeMap<u32, Vec<Task>>,
    pending_workload: u64,
    sketch: HotSketch,
    reserved: ReservedQueue<Task>,
    borrowed: crate::fasthash::FastMap<BlockAddr, Borrow>,
    borrow_clock: u64,
    borrow_capacity: usize,
    finished_workload: u64,
    rng: SimRng,
}

impl NdpUnit {
    /// Creates a unit per the system configuration.
    pub fn new(id: UnitId, cfg: &SystemConfig, rng: SimRng) -> Self {
        NdpUnit {
            id,
            bank: BankModel::new(),
            mailbox: Mailbox::new(cfg.mailbox_bytes),
            pending_out: VecDeque::new(),
            is_lent: LentBitmap::new(),
            stats: UnitStats::default(),
            core_free_at: SimTime::ZERO,
            wake_scheduled: false,
            task_queue: VecDeque::new(),
            future: BTreeMap::new(),
            pending_workload: 0,
            sketch: HotSketch::new(cfg.sketch.clone()),
            reserved: ReservedQueue::new(cfg.reserved_chunks, cfg.reserved_tasks_per_chunk),
            borrowed: Default::default(),
            borrow_clock: 0,
            borrow_capacity: cfg.borrowed_capacity_blocks(),
            finished_workload: 0,
            rng,
        }
    }

    // ---- task queue -----------------------------------------------------

    /// Whether this unit currently holds the data block (home-and-not-
    /// lent, or borrowed).
    pub fn holds_block(&self, block: BlockAddr, map: &AddressMap) -> bool {
        if map.block_home(block) == self.id {
            !self.is_lent.is_lent(block)
        } else {
            self.borrowed.contains_key(&block)
        }
    }

    /// Enqueues a task that is ready to execute (its epoch is open).
    /// With `hot_tracking` the task may be parked in the reserved queue
    /// behind the sketch.
    pub fn enqueue_ready(&mut self, task: Task, hot_tracking: bool, map: &AddressMap) {
        let wl = task.workload_or_default();
        let block = map.block_of(task.data);
        // Pin accounting only matters while borrows exist; skip the map
        // probe on the (overwhelmingly common) borrow-free fast path.
        if !self.borrowed.is_empty() {
            if let Some(b) = self.borrowed.get_mut(&block) {
                b.pins += 1;
            }
        }
        self.pending_workload += wl;
        if hot_tracking && self.holds_block(block, map) {
            self.sketch.record(block.0, wl, &mut self.rng);
            if self.sketch.get(block.0).is_some() {
                match self.reserved.reserve(block.0, task) {
                    Ok(()) => return,
                    Err(task) => {
                        self.task_queue.push_back(task);
                        return;
                    }
                }
            }
        }
        self.task_queue.push_back(task);
    }

    /// Parks a task whose epoch has not opened yet.
    pub fn enqueue_future(&mut self, task: Task) {
        self.future.entry(task.ts.0).or_default().push(task);
    }

    /// Releases parked tasks of `epoch` into the ready queue; returns
    /// how many were released.
    pub fn release_epoch(
        &mut self,
        epoch: Timestamp,
        hot_tracking: bool,
        map: &AddressMap,
    ) -> usize {
        let Some(tasks) = self.future.remove(&epoch.0) else {
            return 0;
        };
        let n = tasks.len();
        for t in tasks {
            self.enqueue_ready(t, hot_tracking, map);
        }
        n
    }

    /// Pops the next ready task, refilling the ready queue from the
    /// reserved queue when needed. Releases the task's borrow pin.
    pub fn pop_task(&mut self, map: &AddressMap) -> Option<Task> {
        loop {
            if let Some(t) = self.task_queue.pop_front() {
                let wl = t.workload_or_default();
                self.pending_workload -= wl;
                if !self.borrowed.is_empty() {
                    let block = map.block_of(t.data);
                    if let Some(b) = self.borrowed.get_mut(&block) {
                        b.pins = b.pins.saturating_sub(1);
                    }
                }
                return Some(t);
            }
            if self.reserved.is_empty() {
                return None;
            }
            // Refill: pull the hottest reserved list back into the ready
            // queue (they are local work when no scheduling claims them).
            if let Some((key, _)) = self.sketch.pop_hottest() {
                let list = self.reserved.take(key);
                self.task_queue.extend(list);
            } else {
                let all = self.reserved.drain_all();
                self.task_queue.extend(all);
            }
        }
    }

    /// Workload waiting to execute (`W_queue`): ready queue plus
    /// reserved tasks.
    pub fn queue_workload(&self) -> u64 {
        self.pending_workload
    }

    /// Number of ready + reserved tasks.
    pub fn queued_tasks(&self) -> usize {
        self.task_queue.len() + self.reserved.total_tasks()
    }

    /// Lifetime `(hits, overflows)` of the reserved queue: tasks parked
    /// behind the sketch vs. bounced to the ready queue on pool
    /// exhaustion (reported by the metrics registry).
    pub fn reserved_stats(&self) -> (u64, u64) {
        (self.reserved.hits(), self.reserved.overflows())
    }

    /// Reserved-queue occupancy high-water marks `(chunks, tasks)` —
    /// the buffer-sizing figures the metrics registry reports.
    pub fn reserved_peaks(&self) -> (usize, usize) {
        (self.reserved.peak_chunks(), self.reserved.peak_tasks())
    }

    /// Number of parked future-epoch tasks.
    pub fn future_tasks(&self) -> usize {
        self.future.values().map(Vec::len).sum()
    }

    /// Records `wl` workload as finished (for `W_finish`).
    pub fn add_finished(&mut self, wl: u64) {
        self.finished_workload += wl;
    }

    /// Reads and resets `W_finish` (the state gather consumes it).
    pub fn take_finished(&mut self) -> u64 {
        std::mem::take(&mut self.finished_workload)
    }

    // ---- borrowed data region -------------------------------------------

    /// Whether `block` is currently borrowed here.
    pub fn is_borrowed(&self, block: BlockAddr) -> bool {
        self.borrowed.contains_key(&block)
    }

    /// Admits a borrowed block into the borrowed data region + table.
    /// Returns a block to evict (return home) if capacity was exceeded
    /// and an unpinned victim existed.
    pub fn admit_borrow(&mut self, block: BlockAddr) -> Option<BlockAddr> {
        self.borrow_clock += 1;
        self.borrowed.insert(
            block,
            Borrow {
                last_use: self.borrow_clock,
                pins: 0,
            },
        );
        if self.borrowed.len() <= self.borrow_capacity {
            return None;
        }
        let victim = self
            .borrowed
            .iter()
            .filter(|(k, b)| **k != block && b.pins == 0)
            .min_by_key(|(_, b)| b.last_use)
            .map(|(k, _)| *k);
        match victim {
            Some(v) => {
                self.borrowed.remove(&v);
                Some(v)
            }
            None => {
                self.stats.borrow_overflows.inc();
                None
            }
        }
    }

    /// Removes a borrowed block (it is being returned home).
    pub fn remove_borrow(&mut self, block: BlockAddr) -> bool {
        self.borrowed.remove(&block).is_some()
    }

    /// Number of blocks currently borrowed.
    pub fn borrowed_count(&self) -> usize {
        self.borrowed.len()
    }

    /// Iterates over the borrowed blocks in unspecified order (auditing).
    pub fn borrowed_blocks(&self) -> impl Iterator<Item = BlockAddr> + '_ {
        self.borrowed.keys().copied()
    }

    /// Marks a borrowed block as recently used.
    pub fn touch_borrow(&mut self, block: BlockAddr) {
        self.borrow_clock += 1;
        if let Some(b) = self.borrowed.get_mut(&block) {
            b.last_use = self.borrow_clock;
        }
    }

    // ---- giver-side selection (step ② of Figure 6) -----------------------

    /// Chooses blocks + tasks worth `budget` workload to lend out.
    /// With `hot_first`, hot sketch entries are preferred; the task
    /// queue tail is the fallback (and the only source otherwise).
    /// Chosen home blocks are marked lent immediately.
    pub fn choose_scheduled_out(
        &mut self,
        budget: u64,
        hot_first: bool,
        map: &AddressMap,
    ) -> Vec<ScheduledBlock> {
        let mut out = Vec::new();
        let mut remaining = budget;
        if hot_first {
            while remaining > 0 {
                let Some((key, _)) = self.sketch.pop_hottest() else {
                    break;
                };
                let block = BlockAddr(key);
                let tasks = self.reserved.take(key);
                if tasks.is_empty() {
                    continue;
                }
                if !self.lendable(block, map) {
                    // Keep the tasks local.
                    self.task_queue.extend(tasks);
                    continue;
                }
                let wl: u64 = tasks.iter().map(Task::workload_or_default).sum();
                self.is_lent.set(block);
                self.pending_workload -= wl;
                remaining = remaining.saturating_sub(wl);
                out.push(ScheduledBlock {
                    block,
                    tasks,
                    workload: wl,
                });
            }
        }
        if remaining > 0 {
            out.extend(self.choose_from_tail(remaining, map));
        }
        out
    }

    fn lendable(&self, block: BlockAddr, map: &AddressMap) -> bool {
        map.block_home(block) == self.id && !self.is_lent.is_lent(block)
    }

    /// Tail-of-queue selection (traditional work stealing): walk the
    /// ready queue from the back, grouping tasks by block, until
    /// `budget` workload is gathered.
    fn choose_from_tail(&mut self, budget: u64, map: &AddressMap) -> Vec<ScheduledBlock> {
        let mut groups: Vec<(BlockAddr, Vec<Task>, u64)> = Vec::new();
        let mut collected = 0u64;
        let mut keep: VecDeque<Task> = VecDeque::new();
        // Stop walking once the budget is met: the unexamined front of
        // the queue stays in place, so `keep` only ever holds the
        // examined-but-unpicked tail instead of the whole queue.
        while collected < budget {
            let Some(task) = self.task_queue.pop_back() else {
                break;
            };
            let block = map.block_of(task.data);
            if !self.lendable(block, map) && !groups.iter().any(|(b, _, _)| *b == block) {
                keep.push_front(task);
                continue;
            }
            let wl = task.workload_or_default();
            collected += wl;
            match groups.iter_mut().find(|(b, _, _)| *b == block) {
                Some((_, tasks, gwl)) => {
                    tasks.push(task);
                    *gwl += wl;
                }
                None => groups.push((block, vec![task], wl)),
            }
        }
        // Re-append the kept tail behind the untouched front portion,
        // preserving the original relative order.
        self.task_queue.append(&mut keep);
        let mut out = Vec::new();
        for (block, mut tasks, wl) in groups {
            tasks.reverse(); // restore original queue order
            if self.lendable(block, map) {
                self.is_lent.set(block);
            }
            self.pending_workload -= wl;
            out.push(ScheduledBlock {
                block,
                tasks,
                workload: wl,
            });
        }
        out
    }

    /// Distinct home blocks that are currently lent out but still have
    /// tasks queued here. Such tasks would be rerouted to the holder
    /// one-by-one on pop anyway; the gather-aware steal path forwards
    /// them eagerly (task-only, no data transfer) when the holder is
    /// one of the round's receivers.
    pub fn queued_lent_home_blocks(&self, map: &AddressMap) -> Vec<BlockAddr> {
        let mut seen = FastSet::default();
        let mut out = Vec::new();
        for t in &self.task_queue {
            let block = map.block_of(t.data);
            if map.block_home(block) == self.id
                && self.is_lent.is_lent(block)
                && seen.insert(block.0)
            {
                out.push(block);
            }
        }
        out
    }

    /// Gather-cost-aware giver-side selection (`LbPolicy::byte_budget`
    /// / `prefer_lent`): like [`choose_scheduled_out`], but every pick
    /// is charged its wire bytes against `byte_budget`, candidates that
    /// cannot amortize their own transfer (`amortize`, see
    /// [`steal::AmortizeCfg`]) are skipped outright, and tasks whose
    /// blocks are already lent out (the `lent_to` map, block address →
    /// holder) are forwarded task-only, pinned to that holder.
    /// Candidates are ranked by [`crate::steal`]'s preference order;
    /// over-budget candidates are deferred to a later round.
    ///
    /// [`choose_scheduled_out`]: Self::choose_scheduled_out
    #[allow(clippy::too_many_arguments)]
    pub fn choose_scheduled_out_aware(
        &mut self,
        budget: u64,
        byte_budget: u64,
        hot_first: bool,
        lent_to: &FastMap<u64, UnitId>,
        data_wire_bytes: u64,
        amortize: Option<steal::AmortizeCfg>,
        map: &AddressMap,
    ) -> Vec<AwarePick> {
        let mut out = Vec::new();
        let mut wl_left = budget;
        let mut bytes_left = byte_budget;
        // Hot pre-phase: same source as the non-aware path (sketch +
        // reserved queue), but each block is charged data + task wire
        // bytes. The first unaffordable hot block is deferred back to
        // the ready queue and ends the phase.
        if hot_first {
            while wl_left > 0 {
                let Some((key, _)) = self.sketch.pop_hottest() else {
                    break;
                };
                let block = BlockAddr(key);
                let tasks = self.reserved.take(key);
                if tasks.is_empty() {
                    continue;
                }
                if !self.lendable(block, map) {
                    self.task_queue.extend(tasks);
                    continue;
                }
                let cost = data_wire_bytes + task_wire_bytes(&tasks);
                if cost > bytes_left {
                    self.task_queue.extend(tasks);
                    break;
                }
                let wl: u64 = tasks.iter().map(Task::workload_or_default).sum();
                self.is_lent.set(block);
                self.pending_workload -= wl;
                wl_left = wl_left.saturating_sub(wl);
                bytes_left -= cost;
                out.push(AwarePick {
                    sb: ScheduledBlock {
                        block,
                        tasks,
                        workload: wl,
                    },
                    pinned_recv: None,
                });
            }
        }
        if wl_left == 0 {
            return out;
        }
        // Candidate scan: group the ready queue by block (back-to-front,
        // matching steal-half's tail preference — earlier-scanned groups
        // win planner ties). Tasks for blocks lent elsewhere (holder not
        // receiving this round) or borrowed here stay put for the
        // ordinary reroute path.
        let mut cands: Vec<steal::StealCandidate> = Vec::new();
        let mut idx_of: FastMap<u64, usize> = FastMap::default();
        for task in self.task_queue.iter().rev() {
            let block = map.block_of(task.data);
            let task_only = lent_to.contains_key(&block.0);
            if !task_only && !self.lendable(block, map) {
                continue;
            }
            let tb = u64::from(task.wire_bytes().min(MAX_MESSAGE_BYTES));
            let wl = task.workload_or_default();
            match idx_of.get(&block.0) {
                Some(&i) => {
                    cands[i].workload += wl;
                    cands[i].task_bytes += tb;
                }
                None => {
                    idx_of.insert(block.0, cands.len());
                    cands.push(steal::StealCandidate {
                        key: block.0,
                        workload: wl,
                        task_bytes: tb,
                        data_bytes: if task_only { 0 } else { data_wire_bytes },
                        hot: self.sketch.get(block.0).is_some(),
                    });
                }
            }
        }
        // Payoff filter: a block move whose queued workload cannot hide
        // its own wire bytes is not worth making at any budget — the
        // receiver would stall longer than the stolen work runs.
        if let Some(am) = amortize {
            cands.retain(|c| am.pays(c));
        }
        let picked = steal::plan_steal(&cands, wl_left, bytes_left);
        if picked.is_empty() {
            return out;
        }
        // Extract the picked blocks' tasks in one front-to-back pass
        // (preserves queue order within each group and for the rest).
        let planned_start = out.len();
        let mut slot_of: FastMap<u64, usize> = FastMap::default();
        for i in picked {
            let block = BlockAddr(cands[i].key);
            slot_of.insert(block.0, out.len());
            out.push(AwarePick {
                sb: ScheduledBlock {
                    block,
                    tasks: Vec::new(),
                    workload: 0,
                },
                pinned_recv: lent_to.get(&block.0).copied(),
            });
        }
        let mut remaining: VecDeque<Task> = VecDeque::with_capacity(self.task_queue.len());
        for task in self.task_queue.drain(..) {
            let block = map.block_of(task.data);
            match slot_of.get(&block.0) {
                Some(&si) => {
                    let sb = &mut out[si].sb;
                    sb.workload += task.workload_or_default();
                    sb.tasks.push(task);
                }
                None => remaining.push_back(task),
            }
        }
        self.task_queue = remaining;
        for pick in &out[planned_start..] {
            self.pending_workload -= pick.sb.workload;
            if pick.pinned_recv.is_none() {
                self.is_lent.set(pick.sb.block);
            }
        }
        out
    }

    /// The unit's deterministic RNG (for system-level decisions tied to
    /// this unit).
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }
}

/// Wire bytes of a batch of task descriptors, as they would be mailed.
fn task_wire_bytes(tasks: &[Task]) -> u64 {
    tasks
        .iter()
        .map(|t| u64::from(t.wire_bytes().min(MAX_MESSAGE_BYTES)))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndpb_tasks::{TaskArgs, TaskFnId};

    fn cfg() -> SystemConfig {
        SystemConfig::table1()
    }

    fn map(c: &SystemConfig) -> AddressMap {
        AddressMap::new(&c.geometry, c.g_xfer, c.timing.row_bytes)
    }

    fn unit(c: &SystemConfig, id: u32) -> NdpUnit {
        NdpUnit::new(UnitId(id), c, SimRng::new(id as u64))
    }

    fn task_at(m: &AddressMap, u: u32, offset: u64, wl: u32) -> Task {
        Task::new(
            TaskFnId(0),
            Timestamp(0),
            m.addr_in_unit(UnitId(u), offset),
            wl,
            TaskArgs::EMPTY,
        )
    }

    #[test]
    fn enqueue_pop_fifo_without_hot() {
        let c = cfg();
        let m = map(&c);
        let mut u = unit(&c, 0);
        u.enqueue_ready(task_at(&m, 0, 0, 5), false, &m);
        u.enqueue_ready(task_at(&m, 0, 256, 7), false, &m);
        assert_eq!(u.queue_workload(), 12);
        assert_eq!(u.queued_tasks(), 2);
        let t = u.pop_task(&m).unwrap();
        assert_eq!(t.est_workload, 5);
        assert_eq!(u.queue_workload(), 7);
        u.pop_task(&m).unwrap();
        assert!(u.pop_task(&m).is_none());
        assert_eq!(u.queue_workload(), 0);
    }

    #[test]
    fn hot_tracking_parks_in_reserved_and_refills() {
        let c = cfg();
        let m = map(&c);
        let mut u = unit(&c, 0);
        for _ in 0..10 {
            u.enqueue_ready(task_at(&m, 0, 0, 3), true, &m);
        }
        assert_eq!(u.queued_tasks(), 10);
        assert_eq!(u.queue_workload(), 30);
        // Popping drains through the reserved refill path.
        let mut n = 0;
        while u.pop_task(&m).is_some() {
            n += 1;
        }
        assert_eq!(n, 10);
        assert_eq!(u.queue_workload(), 0);
    }

    #[test]
    fn future_tasks_release_at_barrier() {
        let c = cfg();
        let m = map(&c);
        let mut u = unit(&c, 0);
        let mut t = task_at(&m, 0, 0, 2);
        t.ts = Timestamp(1);
        u.enqueue_future(t);
        assert_eq!(u.future_tasks(), 1);
        assert_eq!(u.queued_tasks(), 0);
        assert_eq!(u.release_epoch(Timestamp(1), false, &m), 1);
        assert_eq!(u.queued_tasks(), 1);
        assert_eq!(u.release_epoch(Timestamp(2), false, &m), 0);
    }

    #[test]
    fn holds_block_home_and_lent() {
        let c = cfg();
        let m = map(&c);
        let mut u = unit(&c, 0);
        let b = m.block_of(m.addr_in_unit(UnitId(0), 0));
        assert!(u.holds_block(b, &m));
        u.is_lent.set(b);
        assert!(!u.holds_block(b, &m));
        // Another unit's block is not held unless borrowed.
        let fb = m.block_of(m.addr_in_unit(UnitId(1), 0));
        assert!(!u.holds_block(fb, &m));
        u.admit_borrow(fb);
        assert!(u.holds_block(fb, &m));
    }

    #[test]
    fn borrow_eviction_lru_unpinned() {
        let c = cfg();
        let mut u = unit(&c, 0);
        u.borrow_capacity = 2;
        assert_eq!(u.admit_borrow(BlockAddr(1)), None);
        assert_eq!(u.admit_borrow(BlockAddr(2)), None);
        u.touch_borrow(BlockAddr(1));
        let e = u.admit_borrow(BlockAddr(3));
        assert_eq!(e, Some(BlockAddr(2)));
        assert_eq!(u.borrowed_count(), 2);
    }

    #[test]
    fn pinned_blocks_survive_eviction() {
        let c = cfg();
        let m = map(&c);
        let mut u = unit(&c, 1);
        u.borrow_capacity = 1;
        // Borrow unit 0's block and pin it with a queued task.
        let home0 = m.block_of(m.addr_in_unit(UnitId(0), 0));
        u.admit_borrow(home0);
        u.enqueue_ready(task_at(&m, 0, 0, 1), false, &m); // pins home0
        let e = u.admit_borrow(BlockAddr(99_999));
        assert_eq!(e, None, "pinned LRU must not be evicted");
        assert_eq!(u.stats.borrow_overflows.get(), 1);
        // Popping the task unpins; next admit can evict it.
        u.pop_task(&m).unwrap();
        let e = u.admit_borrow(BlockAddr(99_998));
        assert_eq!(e, Some(home0));
    }

    #[test]
    fn choose_from_tail_groups_by_block() {
        let c = cfg();
        let m = map(&c);
        let mut u = unit(&c, 0);
        // Two tasks on block A (offset 0), one on block B (offset 256).
        u.enqueue_ready(task_at(&m, 0, 0, 4), false, &m);
        u.enqueue_ready(task_at(&m, 0, 256, 4), false, &m);
        u.enqueue_ready(task_at(&m, 0, 16, 4), false, &m);
        let out = u.choose_scheduled_out(8, false, &m);
        let total: u64 = out.iter().map(|s| s.workload).sum();
        assert!(total >= 8);
        // All chosen blocks are marked lent.
        for s in &out {
            assert!(u.is_lent.is_lent(s.block));
        }
        assert_eq!(u.queue_workload() + total, 12);
    }

    #[test]
    fn choose_hot_prefers_sketch_blocks() {
        let c = cfg();
        let m = map(&c);
        let mut u = unit(&c, 0);
        // Hot block: 20 tasks at offset 0; cold: 1 task at 512.
        for _ in 0..20 {
            u.enqueue_ready(task_at(&m, 0, 0, 2), true, &m);
        }
        u.enqueue_ready(task_at(&m, 0, 512, 2), true, &m);
        let out = u.choose_scheduled_out(10, true, &m);
        assert!(!out.is_empty());
        let hot = m.block_of(m.addr_in_unit(UnitId(0), 0));
        assert_eq!(out[0].block, hot);
        assert!(out[0].tasks.len() >= 5, "hot block brings its tasks");
    }

    #[test]
    fn lent_blocks_not_rechosen() {
        let c = cfg();
        let m = map(&c);
        let mut u = unit(&c, 0);
        u.enqueue_ready(task_at(&m, 0, 0, 4), false, &m);
        let first = u.choose_scheduled_out(4, false, &m);
        assert_eq!(first.len(), 1);
        // Re-enqueue a task on the now-lent block; it must not be chosen.
        u.enqueue_ready(task_at(&m, 0, 8, 4), false, &m);
        let second = u.choose_scheduled_out(4, false, &m);
        assert!(second.is_empty());
        assert_eq!(u.queued_tasks(), 1);
    }

    #[test]
    fn finished_workload_take_resets() {
        let c = cfg();
        let mut u = unit(&c, 0);
        u.add_finished(10);
        u.add_finished(5);
        assert_eq!(u.take_finished(), 15);
        assert_eq!(u.take_finished(), 0);
    }
}
