//! The non-NDP baseline **H**: the same task-based applications run on
//! the host CPU alone (Section VII: 16 out-of-order cores at 2.6 GHz,
//! 20 MB LLC, two DDR4-2400 channels, free shared-memory work stealing).
//!
//! Because all cores share one memory, work stealing is free and
//! perfectly balanced (a single global ready queue); the costs are the
//! far smaller core count and the two channels' worth of DRAM bandwidth
//! that every access contends for.

use std::collections::{BTreeMap, VecDeque};

use ndpb_dram::{Bus, EnergyBreakdown};
use ndpb_sim::stats::BusyTime;
use ndpb_sim::{ShardedEventQueue, SimTime, TICKS_PER_CORE_CYCLE};
use ndpb_tasks::{Application, ExecCtx, Task};

use crate::config::SystemConfig;
use crate::epoch::EpochTracker;
use crate::pool::BufPool;
use crate::result::{ProfileStats, RunResult};

/// Host CPU model parameters.
#[derive(Debug, Clone)]
pub struct HostOnlyConfig {
    /// Number of out-of-order cores.
    pub workers: usize,
    /// Host clock relative to the 400 MHz NDP core (2.6 GHz ⇒ 6.5).
    pub clock_ratio: f64,
    /// IPC advantage of the OoO pipeline over the wimpy in-order core.
    pub ipc_ratio: f64,
    /// Active power per host core in watts.
    pub core_active_w: f64,
    /// Static power of the host socket + DIMMs in watts.
    pub static_w: f64,
}

impl HostOnlyConfig {
    /// The paper's host configuration.
    pub fn paper() -> Self {
        HostOnlyConfig {
            workers: 16,
            clock_ratio: 6.5,
            // Pointer-chasing, cache-missing task code gains little IPC
            // from the wide pipeline.
            ipc_ratio: 1.5,
            core_active_w: 1.5,
            static_w: 10.0,
        }
    }
}

impl Default for HostOnlyConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[derive(Debug)]
struct Done {
    worker: u32,
    task: Task,
    children: Vec<Task>,
}

/// Runs `app` on the host-only baseline and reports metrics comparable
/// to [`crate::System::run`].
pub struct HostOnly {
    cfg: SystemConfig,
    host: HostOnlyConfig,
    app: Box<dyn Application>,
    /// Completion queue, sharded by worker id (`cfg.shards` wheels,
    /// capped at the worker count). Exact-merge pop order keeps results
    /// byte-identical for every shard count, like `System`.
    q: ShardedEventQueue<Done>,
    ready: VecDeque<Task>,
    future: BTreeMap<u32, Vec<Task>>,
    worker_free: Vec<SimTime>,
    worker_busy: Vec<BusyTime>,
    worker_last: Vec<SimTime>,
    idle: Vec<usize>,
    channels: Vec<Bus>,
    epochs: EpochTracker,
    tasks_executed: u64,
    dram_bytes: u64,
    /// Persistent execution context plus spawn-`Vec` free list: the run
    /// loop executes every task without per-task heap allocation (same
    /// recycling scheme as `System`).
    ctx: ExecCtx,
    spawn_pool: BufPool<Task>,
    /// Event-loop phase profile, armed by [`Self::set_profile`] and
    /// surfaced as [`RunResult::profile`] (kept out of `to_json`, like
    /// `System`'s).
    profile: Option<ProfileStats>,
}

impl HostOnly {
    /// Builds the baseline from the NDP system config (for the shared
    /// DRAM timing/energy parameters) and the host model.
    pub fn new(cfg: SystemConfig, host: HostOnlyConfig, app: Box<dyn Application>) -> Self {
        let channels = (0..cfg.geometry.channels)
            .map(|_| Bus::new(cfg.geometry.channel_dq_bits()))
            .collect();
        let w = host.workers;
        let shards = cfg.shards.clamp(1, w.max(1));
        HostOnly {
            cfg,
            host,
            app,
            // Host completion times pile up multiple wheel revolutions
            // ahead of the clock (per-access activation latency plus
            // shared-channel queueing across 16 workers), which made the
            // default 4096-tick horizon overflow-dominated — the 0.96x
            // H regression vs the old heap. Start the calendar wide; the
            // wheel still auto-tunes if contention pushes further out.
            q: ShardedEventQueue::with_horizon(shards, 1 << 16),
            ready: VecDeque::new(),
            future: BTreeMap::new(),
            worker_free: vec![SimTime::ZERO; w],
            worker_busy: vec![BusyTime::default(); w],
            worker_last: vec![SimTime::ZERO; w],
            idle: (0..w).rev().collect(),
            channels,
            epochs: EpochTracker::new(),
            tasks_executed: 0,
            dram_bytes: 0,
            ctx: ExecCtx::new(ndpb_dram::UnitId(0)),
            spawn_pool: BufPool::new(),
            profile: None,
        }
    }

    /// Arms the event-loop phase profiler (see [`crate::System::set_profile`]).
    pub fn set_profile(&mut self) {
        self.profile = Some(ProfileStats::default());
    }

    /// Ticks a host core needs for `cycles` NDP-core-equivalent cycles.
    fn host_compute_ticks(&self, cycles: u64) -> u64 {
        let scale = self.host.clock_ratio * self.host.ipc_ratio;
        ((cycles as f64 * TICKS_PER_CORE_CYCLE as f64) / scale).ceil() as u64
    }

    fn dispatch(&mut self, now: SimTime) {
        while let (Some(&w), false) = (self.idle.last(), self.ready.is_empty()) {
            let task = self.ready.pop_front().expect("non-empty");
            self.idle.pop();
            self.start(w, task, now);
        }
    }

    fn start(&mut self, w: usize, task: Task, now: SimTime) {
        let begin = now.max(self.worker_free[w]);
        let spawn_buf = self.spawn_pool.get();
        self.ctx.reset(ndpb_dram::UnitId(0), spawn_buf);
        self.app.execute(&task, &mut self.ctx);
        let ctx = &self.ctx;
        let mut t = begin + SimTime::from_ticks(self.host_compute_ticks(ctx.compute_cycles()));
        // Each declared access is a cache-missing DRAM access. The
        // accesses a task declares are data-dependent (pointer chases,
        // index lookups), so the out-of-order core exposes one full
        // activation latency per access on top of the shared channels'
        // bandwidth occupancy — this, not compute, is why the host loses
        // to near-bank processing on these workloads.
        // Random accesses under 16-core pressure conflict in the open
        // banks: precharge + activate + CAS.
        let latency = self.cfg.timing.t_rp + self.cfg.timing.t_rcd + self.cfg.timing.t_cas;
        let mut total_bytes = 0u64;
        for &(addr, bytes) in ctx.reads().iter().chain(ctx.writes().iter()) {
            let ch = (addr.0 / 64) as usize % self.channels.len();
            let grant = self.channels[ch].reserve(t, bytes as u64);
            t = grant.end.max(t + latency);
            total_bytes += bytes as u64;
        }
        self.dram_bytes += total_bytes;
        self.worker_free[w] = t;
        self.worker_busy[w].record(begin, t);
        self.worker_last[w] = t;
        for c in ctx.spawned() {
            self.epochs.spawned(c.ts);
        }
        self.q.schedule(
            t,
            w % self.q.shards(),
            Done {
                worker: w as u32,
                task,
                children: self.ctx.take_spawned(),
            },
        );
    }

    fn enqueue(&mut self, task: Task) {
        if self.epochs.is_ready(task.ts) {
            self.ready.push_back(task);
        } else {
            self.future.entry(task.ts.0).or_default().push(task);
        }
    }

    /// Processes one completion exactly as the pop-at-a-time loop did;
    /// batching changes how completions are *fetched*, never what each
    /// one does, so results stay byte-identical.
    fn complete(&mut self, now: SimTime, mut done: Done) {
        self.tasks_executed += 1;
        for child in done.children.drain(..) {
            self.enqueue(child);
        }
        self.spawn_pool.put(done.children);
        if let Some(next) = self.epochs.completed(done.task.ts) {
            if let Some(released) = self.future.remove(&next.0) {
                self.ready.extend(released);
            }
        }
        self.idle.push(done.worker as usize);
        self.dispatch(now);
    }

    /// Runs to completion.
    pub fn run(mut self) -> RunResult {
        for t in self.app.initial_tasks() {
            self.epochs.spawned(t.ts);
            self.enqueue(t);
        }
        self.dispatch(SimTime::ZERO);
        // Batched same-tick dispatch (DESIGN.md §3c): one merged head
        // scan per run of equal-time completions instead of one per pop.
        let mut batch: Vec<Done> = Vec::with_capacity(32);
        if self.profile.is_some() {
            self.run_profiled(&mut batch);
        } else {
            while let Some(now) = self.q.pop_run(&mut batch) {
                for done in batch.drain(..) {
                    self.complete(now, done);
                }
            }
        }
        assert!(
            self.epochs.all_done(),
            "host-only run drained events with tasks outstanding"
        );
        self.finalize()
    }

    /// The batched loop with phase timing (two clock reads per run).
    fn run_profiled(&mut self, batch: &mut Vec<Done>) {
        let mut prof = ProfileStats::default();
        loop {
            let t0 = std::time::Instant::now();
            let now = self.q.pop_run(batch);
            prof.queue_ns += t0.elapsed().as_nanos() as u64;
            let Some(now) = now else { break };
            prof.note_batch(batch.len());
            let t1 = std::time::Instant::now();
            for done in batch.drain(..) {
                self.complete(now, done);
            }
            prof.dispatch_ns += t1.elapsed().as_nanos() as u64;
        }
        self.profile = Some(prof);
    }

    fn finalize(mut self) -> RunResult {
        let finalize_start = self.profile.is_some().then(std::time::Instant::now);
        let makespan = self
            .worker_last
            .iter()
            .copied()
            .fold(SimTime::ZERO, SimTime::max);
        let busy_total: SimTime = self
            .worker_busy
            .iter()
            .fold(SimTime::ZERO, |a, b| a + b.total());
        let max_busy = self
            .worker_busy
            .iter()
            .map(|b| b.total())
            .fold(SimTime::ZERO, SimTime::max);
        let avg_busy = if self.worker_busy.is_empty() {
            SimTime::ZERO
        } else {
            SimTime::from_ticks(busy_total.ticks() / self.worker_busy.len() as u64)
        };
        let e = &self.cfg.energy;
        let energy = EnergyBreakdown {
            core_sram_pj: self.host.core_active_w * busy_total.as_secs() * 1e12,
            dram_local_pj: e.dram_pj(self.dram_bytes) + e.channel_pj(self.dram_bytes),
            dram_comm_pj: 0.0,
            static_pj: self.host.static_w * makespan.as_secs() * 1e12,
        };
        let channel_bytes = self.channels.iter().map(|c| c.bytes.get()).sum();
        RunResult {
            app: self.app.name().to_string(),
            design: "H".to_string(),
            makespan,
            avg_unit_time: avg_busy,
            max_unit_time: max_busy,
            wait_fraction: if makespan == SimTime::ZERO {
                0.0
            } else {
                1.0 - max_busy.ticks() as f64 / makespan.ticks() as f64
            },
            balance: if makespan == SimTime::ZERO {
                1.0
            } else {
                avg_busy.ticks() as f64 / makespan.ticks() as f64
            },
            tasks_executed: self.tasks_executed,
            tasks_rerouted: 0,
            messages_delivered: 0,
            rank_bus_bytes: 0,
            channel_bytes,
            comm_dram_bytes: 0,
            local_dram_bytes: self.dram_bytes,
            lb_rounds: 0,
            blocks_migrated: 0,
            energy,
            checksum: self.app.checksum(),
            events: self.q.popped(),
            per_unit_busy: self.worker_busy.iter().map(|b| b.total().ticks()).collect(),
            metrics: ndpb_trace::MetricsReport::default(),
            trace: Vec::new(),
            parallel: None,
            profile: self.profile.take().map(|mut p| {
                p.finalize_ns = finalize_start
                    .map(|t| t.elapsed().as_nanos() as u64)
                    .unwrap_or(0);
                p
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndpb_dram::DataAddr;
    use ndpb_tasks::{TaskArgs, TaskFnId, Timestamp};

    /// N independent tasks of fixed compute.
    struct Flat {
        n: usize,
        executed: u64,
    }

    impl Application for Flat {
        fn name(&self) -> &str {
            "flat"
        }
        fn initial_tasks(&mut self) -> Vec<Task> {
            (0..self.n)
                .map(|i| {
                    Task::new(
                        TaskFnId(0),
                        Timestamp(0),
                        DataAddr(i as u64 * 64),
                        100,
                        TaskArgs::EMPTY,
                    )
                })
                .collect()
        }
        fn execute(&mut self, _t: &Task, ctx: &mut ExecCtx) {
            ctx.compute(100);
            self.executed += 1;
        }
        fn checksum(&self) -> u64 {
            self.executed
        }
    }

    #[test]
    fn executes_all_tasks() {
        let app = Flat { n: 64, executed: 0 };
        let r = HostOnly::new(
            SystemConfig::table1(),
            HostOnlyConfig::paper(),
            Box::new(app),
        )
        .run();
        assert_eq!(r.tasks_executed, 64);
        assert_eq!(r.checksum, 64);
        assert!(r.makespan > SimTime::ZERO);
    }

    #[test]
    fn parallel_speedup_vs_single_worker() {
        let mk = |workers| {
            let app = Flat {
                n: 160,
                executed: 0,
            };
            let host = HostOnlyConfig {
                workers,
                ..HostOnlyConfig::paper()
            };
            HostOnly::new(SystemConfig::table1(), host, Box::new(app)).run()
        };
        let one = mk(1);
        let sixteen = mk(16);
        let speedup = one.makespan.ticks() as f64 / sixteen.makespan.ticks() as f64;
        assert!(speedup > 10.0, "compute-bound tasks scale: {speedup}");
    }

    #[test]
    fn epochs_are_barriers() {
        /// Two-epoch app: each epoch-0 task spawns one epoch-1 task.
        struct TwoPhase {
            phase1_seen: u64,
        }
        impl Application for TwoPhase {
            fn name(&self) -> &str {
                "two-phase"
            }
            fn initial_tasks(&mut self) -> Vec<Task> {
                (0..32)
                    .map(|i| {
                        Task::new(
                            TaskFnId(0),
                            Timestamp(0),
                            DataAddr(i * 64),
                            10,
                            TaskArgs::EMPTY,
                        )
                    })
                    .collect()
            }
            fn execute(&mut self, t: &Task, ctx: &mut ExecCtx) {
                ctx.compute(10);
                if t.ts == Timestamp(0) {
                    ctx.enqueue_task(TaskFnId(1), Timestamp(1), t.data, 10, TaskArgs::EMPTY);
                } else {
                    self.phase1_seen += 1;
                }
            }
            fn checksum(&self) -> u64 {
                self.phase1_seen
            }
        }
        let r = HostOnly::new(
            SystemConfig::table1(),
            HostOnlyConfig::paper(),
            Box::new(TwoPhase { phase1_seen: 0 }),
        )
        .run();
        assert_eq!(r.tasks_executed, 64);
        assert_eq!(r.checksum, 32);
    }

    #[test]
    fn memory_bound_tasks_contend_on_channels() {
        /// Tasks that each stream 4 kB from memory.
        struct Stream;
        impl Application for Stream {
            fn name(&self) -> &str {
                "stream"
            }
            fn initial_tasks(&mut self) -> Vec<Task> {
                (0..64)
                    .map(|i| {
                        Task::new(
                            TaskFnId(0),
                            Timestamp(0),
                            DataAddr(i * 4096),
                            1,
                            TaskArgs::EMPTY,
                        )
                    })
                    .collect()
            }
            fn execute(&mut self, t: &Task, ctx: &mut ExecCtx) {
                ctx.compute(1);
                ctx.read(t.data, 4096);
            }
        }
        let r = HostOnly::new(
            SystemConfig::table1(),
            HostOnlyConfig::paper(),
            Box::new(Stream),
        )
        .run();
        // 64 × 4 kB over 2 channels at 8 B/tick ⇒ ≥ 16384 ticks.
        assert!(r.makespan.ticks() >= 16000, "{}", r.makespan.ticks());
        assert_eq!(r.local_dram_bytes, 64 * 4096);
    }
}
