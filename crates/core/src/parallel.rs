//! Lane-local execution for the windowed parallel engine.
//!
//! A [`Lane`] owns one shard's slice of the system — its units, its
//! rank bridges and a pop-only view of its timer wheel — and replays
//! the *unit-class* event handlers ([`Ev::CoreWake`], [`Ev::TaskDone`],
//! [`Ev::Deliver`]) for one conservative window, concurrently with the
//! other lanes. The ports in this module mirror the serial handlers in
//! `system.rs` exactly, with every touch of shared state replaced by
//! one of three mechanisms:
//!
//! * **Deferred commutative deltas** — metric counters, epoch
//!   spawn/completion counts, `toArrive` settles (saturating
//!   subtraction chains) and host borrow-table removals are recorded in
//!   the [`LaneResult`] and applied at the window barrier. Each is
//!   provably order-independent, so the merged result is byte-identical
//!   to the serial interleaving.
//! * **Causal positions** — events the lane *creates* are stamped with
//!   a [`Pos`]: a lexicographic encoding of (time, creating event's
//!   position, creation index). Position order equals the order in
//!   which the serial engine would have allocated their global sequence
//!   numbers, so same-lane creations can be consumed in-lane in exact
//!   serial order, and barrier-surviving creations from different lanes
//!   can be merged and re-scheduled in exact serial order.
//! * **Stop keys** — a gather/scatter round request
//!   ([`Ev::RankRound`]) must run on the leader, so posting one shrinks
//!   the lane's own stop position to the request: nothing at or past
//!   the round is executed locally. Global-class events already staged
//!   on the leader's heap bound every lane's window the same way.
//!
//! See `DESIGN.md` §9 for the full soundness argument.

use std::sync::Mutex;

use ndpb_dram::{AddressMap, BlockAddr, UnitId};
use ndpb_proto::message::DataMessage;
use ndpb_proto::Message;
use ndpb_sim::{ShardLane, SimTime, TICKS_PER_CORE_CYCLE};
use ndpb_tasks::{Application, ExecCtx, Task, Timestamp};
use ndpb_trace::ComponentId;

use crate::bridge::RankBridge;
use crate::config::{SystemConfig, TriggerPolicy};
use crate::design::LbPolicy;
use crate::epoch::EpochTracker;
use crate::system::{CommCause, Ev, SramCause, MAILBOX_ROW, TASKQ_ROW};
use crate::unit::NdpUnit;

/// A causal position: the total order in which the serial engine would
/// have allocated global sequence numbers.
///
/// Encoding (lexicographic `u64` comparison):
/// * a pre-window wheel event with key `(t, seq)` sits at `[t, 0, seq]`;
/// * an event created at time `at` by the handler running at position
///   `p`, as that handler's `i`-th creation, sits at
///   `[at, 1] ++ p ++ [i]`.
///
/// Time-major comparison reproduces pop order; the `0`/`1` marker
/// encodes that every pre-window sequence number is smaller than every
/// in-window-allocated one; and recursing into the creator's position
/// reproduces the allocation order of fresh sequence numbers, because
/// sequence numbers are handed out in handler execution order.
pub(crate) type Pos = Vec<u64>;

/// Builds the position of a pre-window event key.
#[inline]
pub(crate) fn key_pos(key: (SimTime, u64)) -> Pos {
    vec![key.0.ticks(), 0, key.1]
}

/// `key < pos` for a pre-window wheel key against an arbitrary
/// position, without materialising the key's own position vector.
#[inline]
fn key_lt_pos(key: (SimTime, u64), pos: &[u64]) -> bool {
    let k = [key.0.ticks(), 0, key.1];
    k.as_slice() < pos
}

/// An event created during a window, carrying the causal position that
/// fixes its serial schedule order.
pub(crate) struct PendingEv {
    /// Creation position (see [`Pos`]).
    pub pos: Pos,
    /// Simulation time the event fires.
    pub at: SimTime,
    /// The event itself.
    pub ev: Ev,
}

impl PartialEq for PendingEv {
    fn eq(&self, other: &Self) -> bool {
        self.pos == other.pos
    }
}
impl Eq for PendingEv {}
impl PartialOrd for PendingEv {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingEv {
    /// Reversed, so `BinaryHeap` yields the smallest position first.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.pos.cmp(&self.pos)
    }
}

/// Everything a lane hands back at the window barrier.
pub(crate) struct LaneResult {
    /// Wheel bookkeeping for [`ShardedEventQueue::absorb_lanes`]
    /// (`ndpb_sim::ShardedEventQueue`).
    pub outcome: ndpb_sim::LaneOutcome,
    /// Created-but-unconsumed events (including round requests), to be
    /// merged across lanes by position and re-scheduled by the leader.
    pub leftovers: Vec<PendingEv>,
    /// Communication-DRAM bytes by [`CommCause`] row.
    pub comm: [u64; 10],
    /// SRAM staging bytes by [`SramCause`] row.
    pub sram: [u64; 6],
    /// Messages delivered (the `system/msgs_delivered` metric).
    pub msgs_delivered: u64,
    /// Task spawns per epoch, deferred for the barrier.
    pub spawns: Vec<(Timestamp, u64)>,
    /// Task completions per epoch, deferred for the barrier (the
    /// per-lane completion budget guarantees none drains its epoch).
    pub completions: Vec<(Timestamp, u64)>,
    /// Deferred `toArrive` settles: `(intended rank, local unit,
    /// workload)`, applied as saturating subtractions at the barrier.
    pub settles: Vec<(usize, usize, u64)>,
    /// Blocks whose host borrow-table entry must be removed.
    pub host_removed: Vec<BlockAddr>,
    /// Wall-clock nanoseconds this lane ran (for barrier-stall stats).
    pub wall_ns: u64,
}

/// One shard's execution lane for a single parallel window.
pub(crate) struct Lane<'a> {
    shards: usize,
    upr: usize,
    cfg: &'a SystemConfig,
    map: &'a AddressMap,
    lb: LbPolicy,
    epochs: &'a EpochTracker,
    app: &'a Mutex<&'a mut Box<dyn Application>>,
    units: Vec<&'a mut NdpUnit>,
    bridges: Vec<&'a mut RankBridge>,
    wheel: ShardLane<'a, Ev>,
    /// Stop position: strictly-before bound on what this lane may
    /// execute. Shrunk when the lane posts a round request.
    stop: Pos,
    /// `TaskDone` dispatches this lane may still perform before its
    /// share of the epoch's outstanding count is exhausted.
    budget: u64,
    /// Pending events created this window, consumable in-lane.
    pending: std::collections::BinaryHeap<PendingEv>,
    /// Round requests (and, after the run, leftovers) crossing the
    /// barrier.
    crossing: Vec<PendingEv>,
    /// Position of the event currently being dispatched.
    cur_pos: Pos,
    /// Creation counter within the current handler.
    cur_idx: u64,
    /// Lane-local clock: time of the event being dispatched.
    now: SimTime,
    exec_ctx: ExecCtx,
    spawn_pool: crate::pool::BufPool<Task>,
    // ---- deferred deltas ----
    comm: [u64; 10],
    sram: [u64; 6],
    msgs_delivered: u64,
    spawns: Vec<(Timestamp, u64)>,
    completions: Vec<(Timestamp, u64)>,
    settles: Vec<(usize, usize, u64)>,
    host_removed: Vec<BlockAddr>,
}

impl<'a> Lane<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        wheel: ShardLane<'a, Ev>,
        units: Vec<&'a mut NdpUnit>,
        bridges: Vec<&'a mut RankBridge>,
        cfg: &'a SystemConfig,
        map: &'a AddressMap,
        lb: LbPolicy,
        epochs: &'a EpochTracker,
        app: &'a Mutex<&'a mut Box<dyn Application>>,
        shards: usize,
        stop: Pos,
        budget: u64,
        seeds: Vec<PendingEv>,
    ) -> Self {
        Lane {
            shards,
            upr: cfg.geometry.units_per_rank() as usize,
            cfg,
            map,
            lb,
            epochs,
            app,
            units,
            bridges,
            now: wheel.now,
            wheel,
            stop,
            budget,
            // Staged survivors from earlier windows seed the pending
            // heap; they carry their original causal positions and
            // interleave with the wheel slice like any in-window
            // creation.
            pending: std::collections::BinaryHeap::from(seeds),
            crossing: Vec::new(),
            cur_pos: Vec::new(),
            cur_idx: 0,
            exec_ctx: ExecCtx::new(UnitId(0)),
            spawn_pool: crate::pool::BufPool::new(),
            comm: [0; 10],
            sram: [0; 6],
            msgs_delivered: 0,
            spawns: Vec::new(),
            completions: Vec::new(),
            settles: Vec::new(),
            host_removed: Vec::new(),
        }
    }

    /// Lane-local index of global unit `u` (ranks are dealt to shards
    /// round-robin; each contributes a contiguous `upr` block).
    #[inline]
    fn lu(&self, u: usize) -> usize {
        (u / self.upr / self.shards) * self.upr + (u % self.upr)
    }

    /// Lane-local index of global rank `r`.
    #[inline]
    fn lr(&self, r: usize) -> usize {
        r / self.shards
    }

    #[inline]
    fn local_index(&self, u: usize) -> usize {
        u % self.upr
    }

    /// Records an in-window event creation at its causal position.
    fn pend(&mut self, at: SimTime, ev: Ev) {
        let mut pos = Vec::with_capacity(self.cur_pos.len() + 3);
        pos.push(at.ticks());
        pos.push(1);
        pos.extend_from_slice(&self.cur_pos);
        pos.push(self.cur_idx);
        self.cur_idx += 1;
        self.pending.push(PendingEv { pos, at, ev });
    }

    /// Posts a round request: it must execute on the leader, so it
    /// crosses the barrier and caps this lane's window at its position.
    fn pend_crossing(&mut self, at: SimTime, ev: Ev) {
        let mut pos = Vec::with_capacity(self.cur_pos.len() + 3);
        pos.push(at.ticks());
        pos.push(1);
        pos.extend_from_slice(&self.cur_pos);
        pos.push(self.cur_idx);
        self.cur_idx += 1;
        if pos < self.stop {
            self.stop = pos.clone();
        }
        self.crossing.push(PendingEv { pos, at, ev });
    }

    fn note_spawn(&mut self, ts: Timestamp) {
        match self.spawns.iter_mut().find(|(t, _)| *t == ts) {
            Some((_, n)) => *n += 1,
            None => self.spawns.push((ts, 1)),
        }
    }

    fn note_completion(&mut self, ts: Timestamp) {
        match self.completions.iter_mut().find(|(t, _)| *t == ts) {
            Some((_, n)) => *n += 1,
            None => self.completions.push((ts, 1)),
        }
    }

    #[inline]
    fn charge_comm(&mut self, cause: CommCause, bytes: u64) {
        self.comm[cause as usize] += bytes;
    }

    #[inline]
    fn charge_sram(&mut self, cause: SramCause, bytes: u64) {
        self.sram[cause as usize] += bytes;
    }

    /// Drains the lane up to its stop position (or completion budget)
    /// and returns the barrier payload.
    pub(crate) fn run(mut self) -> LaneResult {
        let t0 = std::time::Instant::now();
        loop {
            // Pick the smaller of the wheel head and the pending head
            // by position; break when it reaches the stop.
            let from_wheel = {
                let wk = self.wheel.peek_key();
                let pp = self.pending.peek().map(|p| p.pos.as_slice());
                match (wk, pp) {
                    (None, None) => break,
                    (Some(k), None) => {
                        if !key_lt_pos(k, &self.stop) {
                            break;
                        }
                        true
                    }
                    (None, Some(p)) => {
                        if p >= self.stop.as_slice() {
                            break;
                        }
                        false
                    }
                    (Some(k), Some(p)) => {
                        if key_lt_pos(k, p) {
                            if !key_lt_pos(k, &self.stop) {
                                break;
                            }
                            true
                        } else {
                            if p >= self.stop.as_slice() {
                                break;
                            }
                            false
                        }
                    }
                }
            };
            let (at, ev) = if from_wheel {
                let (at, seq, ev) = self.wheel.pop().expect("non-empty wheel head");
                self.cur_pos.clear();
                self.cur_pos.extend_from_slice(&[at.ticks(), 0, seq]);
                (at, ev)
            } else {
                let p = self.pending.pop().expect("non-empty pending head");
                // The wheel view's clock and pop counter track lane
                // progress for the queue's absorb step; a consumed
                // pending is a pop the serial engine would have done.
                self.wheel.now = p.at;
                self.wheel.popped += 1;
                self.cur_pos = p.pos;
                (p.at, p.ev)
            };
            self.now = at;
            self.cur_idx = 0;
            let was_task_done = matches!(ev, Ev::TaskDone(..));
            match ev {
                Ev::CoreWake(u) => self.on_core_wake(u as usize),
                Ev::TaskDone(u, task, children) => self.on_task_done(u as usize, task, children),
                Ev::Deliver(u, msg) => self.on_deliver(u as usize, msg),
                other => unreachable!("global-class event {other:?} reached a lane"),
            }
            if was_task_done {
                self.budget -= 1;
                if self.budget == 0 {
                    break;
                }
            }
        }
        // Unconsumed pendings join the round requests as leftovers.
        let mut leftovers = self.crossing;
        leftovers.extend(self.pending.into_sorted_vec());
        LaneResult {
            outcome: self.wheel.finish(),
            leftovers,
            comm: self.comm,
            sram: self.sram,
            msgs_delivered: self.msgs_delivered,
            spawns: self.spawns,
            completions: self.completions,
            settles: self.settles,
            host_removed: self.host_removed,
            wall_ns: t0.elapsed().as_nanos() as u64,
        }
    }

    // ---- handler ports (mirror system.rs; keep in sync) -------------------

    fn wake_unit(&mut self, u: usize, at: SimTime) {
        let lu = self.lu(u);
        let unit = &mut self.units[lu];
        if unit.wake_scheduled {
            return;
        }
        unit.wake_scheduled = true;
        let at = at.max(self.now);
        self.pend(at, Ev::CoreWake(u as u32));
    }

    fn on_core_wake(&mut self, u: usize) {
        let lu = self.lu(u);
        self.units[lu].wake_scheduled = false;
        let now = self.now;
        if now < self.units[lu].core_free_at {
            let at = self.units[lu].core_free_at;
            self.wake_unit(u, at);
            return;
        }
        if !self.units[lu].pending_out.is_empty() {
            self.flush_pending_out(u);
            if !self.units[lu].pending_out.is_empty() {
                self.units[lu].stats.mailbox_stalls.inc();
                return;
            }
        }
        let Some(task) = ({
            let map = self.map;
            self.units[lu].pop_task(map)
        }) else {
            return;
        };
        let block = self.map.block_of(task.data);
        if !self.units[lu].holds_block(block, self.map) {
            self.units[lu].stats.tasks_rerouted.inc();
            let msg = Message::Task(task, None);
            self.emit_message(u, msg, now);
            self.wake_unit(u, now);
            return;
        }
        if self.units[lu].is_borrowed(block) {
            self.units[lu].touch_borrow(block);
        }
        let spawn_buf = self.spawn_pool.get();
        self.exec_ctx.reset(self.units[lu].id, spawn_buf);
        {
            let mut app = self.app.lock().expect("application lock poisoned");
            app.execute(&task, &mut self.exec_ctx);
        }
        let ctx = &self.exec_ctx;
        let mut t = now + SimTime::from_ticks(ctx.compute_cycles() * TICKS_PER_CORE_CYCLE);
        let timing = &self.cfg.timing;
        let comp = ComponentId::Unit(u as u32);
        {
            let unit = &mut self.units[lu];
            for &(addr, bytes) in ctx.reads() {
                let row = self.map.row_of(addr);
                t = unit
                    .bank
                    .access_traced(t, row, bytes, false, timing, comp, None)
                    .end;
                unit.stats.dram_local_bytes.add(bytes as u64);
            }
            for &(addr, bytes) in ctx.writes() {
                let row = self.map.row_of(addr);
                t = unit
                    .bank
                    .access_traced(t, row, bytes, true, timing, comp, None)
                    .end;
                unit.stats.dram_local_bytes.add(bytes as u64);
            }
            unit.core_free_at = t;
            unit.stats.busy.record(now, t);
            unit.stats.last_finish = t;
            unit.stats.tasks_executed.inc();
            unit.add_finished(task.workload_or_default());
        }
        let children = self.exec_ctx.take_spawned();
        for c in &children {
            self.note_spawn(c.ts);
        }
        self.pend(t, Ev::TaskDone(u as u32, task, children));
    }

    fn on_task_done(&mut self, u: usize, task: Task, mut children: Vec<Task>) {
        let now = self.now;
        for child in children.drain(..) {
            self.route_spawn(u, child, now);
        }
        self.spawn_pool.put(children);
        // The serial handler's epoch-advance and all-done branches
        // cannot fire inside a window: the lane completion budgets sum
        // to strictly less than the epoch's outstanding count.
        self.note_completion(task.ts);
        self.wake_unit(u, now);
    }

    fn route_spawn(&mut self, u: usize, task: Task, now: SimTime) {
        let lu = self.lu(u);
        let block = self.map.block_of(task.data);
        if self.units[lu].holds_block(block, self.map) {
            self.charge_comm(CommCause::Taskq, task.wire_bytes() as u64);
            let timing = &self.cfg.timing;
            let unit = &mut self.units[lu];
            unit.bank.access_traced(
                now,
                TASKQ_ROW,
                task.wire_bytes(),
                true,
                timing,
                ComponentId::Unit(u as u32),
                None,
            );
            let hot = self.lb.hot_data;
            if self.epochs.is_ready(task.ts) {
                let map = self.map;
                unit.enqueue_ready(task, hot, map);
                self.wake_unit(u, now);
            } else {
                unit.enqueue_future(task);
            }
            return;
        }
        // Lanes only run under CommPath::Bridges (admission), so the
        // serial handler's RowClone fast path is unreachable here.
        self.emit_message(u, Message::Task(task, None), now);
    }

    fn emit_message(&mut self, u: usize, msg: Message, now: SimTime) {
        let lu = self.lu(u);
        let bytes = msg.wire_bytes();
        let cause = match &msg {
            Message::Task(_, None) => CommCause::MailTask,
            Message::Task(_, Some(_)) => CommCause::MailSched,
            Message::Data(dm, dest) => {
                if *dest == Some(self.map.block_home(dm.block)) {
                    CommCause::MailReturn
                } else {
                    CommCause::MailData
                }
            }
            Message::State(_) => CommCause::MailTask,
        };
        self.charge_comm(cause, bytes as u64);
        let timing = &self.cfg.timing;
        let comp = ComponentId::Unit(u as u32);
        let unit = &mut self.units[lu];
        unit.bank
            .access_traced(now, MAILBOX_ROW, bytes, true, timing, comp, None);
        unit.stats.msgs_emitted.inc();
        if !unit.pending_out.is_empty() {
            unit.pending_out.push_back(msg);
        } else if let Some(back) = unit.mailbox.try_push_traced(msg, now, comp, None) {
            unit.pending_out.push_back(back);
            unit.stats.mailbox_stalls.inc();
        }
        // consider_comm: lanes run only under CommPath::Bridges.
        let r = self.cfg.geometry.rank_of(self.units[lu].id).index();
        self.consider_rank_round(r, now);
    }

    /// Port of the serial trigger logic; instead of scheduling the
    /// round directly it posts a barrier-crossing request (rounds are
    /// leader work) and caps this lane's window at the request.
    fn consider_rank_round(&mut self, r: usize, now: SimTime) {
        let lrr = self.lr(r);
        if self.bridges[lrr].round_scheduled {
            return;
        }
        let base = lrr * self.upr;
        let n = self.upr;
        let units = &self.units[base..base + n];
        let any_msgs =
            units.iter().any(|u| !u.mailbox.is_empty()) || self.bridges[lrr].has_pending_output();
        let at = match self.cfg.trigger {
            TriggerPolicy::Dynamic => {
                if !any_msgs {
                    return;
                }
                let big = units
                    .iter()
                    .any(|u| u.mailbox.bytes_used() >= self.cfg.g_xfer as u64);
                let pending_scatter = (0..n).any(|i| self.bridges[lrr].scatter_pending(i) > 0)
                    || self.bridges[lrr].backup_pending() > 0;
                if big || pending_scatter {
                    if self.bridges[lrr].last_round_idle {
                        now.max(self.bridges[lrr].last_round_end + self.cfg.i_min())
                    } else {
                        now.max(self.bridges[lrr].last_round_end)
                    }
                } else {
                    let idle = units.iter().any(|u| u.queue_workload() == 0);
                    if idle {
                        now.max(self.bridges[lrr].last_round_start + self.cfg.i_min())
                            .max(self.bridges[lrr].last_round_end)
                    } else {
                        return;
                    }
                }
            }
            TriggerPolicy::FixedIMin => now
                .max(self.bridges[lrr].last_round_start + self.cfg.i_min())
                .max(self.bridges[lrr].last_round_end),
            TriggerPolicy::Fixed2IMin => {
                let two = self.cfg.i_min() + self.cfg.i_min();
                now.max(self.bridges[lrr].last_round_start + two)
                    .max(self.bridges[lrr].last_round_end)
            }
        };
        self.bridges[lrr].round_scheduled = true;
        self.pend_crossing(at, Ev::RankRound(r as u32));
    }

    fn flush_pending_out(&mut self, u: usize) {
        let lu = self.lu(u);
        let now = self.now;
        let comp = ComponentId::Unit(u as u32);
        let unit = &mut self.units[lu];
        while let Some(front) = unit.pending_out.pop_front() {
            if let Some(back) = unit.mailbox.try_push_traced(front, now, comp, None) {
                unit.pending_out.push_front(back);
                break;
            }
        }
        if unit.pending_out.is_empty() {
            self.wake_unit(u, now);
        }
    }

    fn on_deliver(&mut self, u: usize, msg: Message) {
        let lu = self.lu(u);
        let now = self.now;
        self.msgs_delivered += 1;
        self.units[lu].stats.msgs_received.inc();
        match msg {
            Message::Task(task, scheduled) => {
                if let Some(intended) = scheduled {
                    // toArrive settles touch the intended receiver's
                    // rank — possibly another shard — so they are
                    // deferred (saturating subtractions commute).
                    let wl = task.workload_or_default();
                    let ir = self.cfg.geometry.rank_of(intended).index();
                    let il = self.local_index(intended.index());
                    self.settles.push((ir, il, wl));
                }
                let block = self.map.block_of(task.data);
                if !self.units[lu].holds_block(block, self.map) {
                    self.units[lu].stats.tasks_rerouted.inc();
                    self.emit_message(u, Message::Task(task, None), now);
                    return;
                }
                let hot = self.lb.hot_data;
                if self.epochs.is_ready(task.ts) {
                    let map = self.map;
                    self.units[lu].enqueue_ready(task, hot, map);
                    self.wake_unit(u, now);
                } else {
                    self.units[lu].enqueue_future(task);
                }
            }
            Message::Data(dm, _dest) => {
                let home = self.map.block_home(dm.block);
                if home.index() == u {
                    self.units[lu].is_lent.clear(dm.block);
                    self.wake_unit(u, now);
                } else {
                    let uid = self.units[lu].id;
                    let r = self.cfg.geometry.rank_of(uid).index();
                    let stale =
                        self.bridges[self.lr(r)].data_borrowed.peek(&dm.block) != Some(&uid);
                    if stale {
                        self.return_block_home(u, dm.block, now);
                    } else {
                        self.admit_borrowed_block(u, dm, now);
                    }
                }
            }
            Message::State(_) => {}
        }
    }

    fn admit_borrowed_block(&mut self, u: usize, dm: DataMessage, now: SimTime) {
        let lu = self.lu(u);
        let evicted = self.units[lu].admit_borrow(dm.block);
        self.charge_sram(SramCause::BorrowMeta, 16);
        if let Some(victim) = evicted {
            self.return_block_home(u, victim, now);
        }
    }

    fn return_block_home(&mut self, u: usize, block: BlockAddr, now: SimTime) {
        let lu = self.lu(u);
        let home = self.map.block_home(block);
        let my_rank = self.cfg.geometry.rank_of(self.units[lu].id);
        let lbr = self.lr(my_rank.index());
        self.bridges[lbr].data_borrowed.remove(&block);
        // The host-level entry lives on the leader; removals of
        // distinct keys commute, so defer it to the barrier.
        self.host_removed.push(block);
        let dm = DataMessage {
            block,
            bytes: self.cfg.g_xfer,
            workload: 0,
        };
        self.emit_message(u, Message::Data(dm, Some(home)), now);
    }
}
