//! A tiny free-list pool for hot-path `Vec` buffers.
//!
//! The event loop constantly needs short-lived vectors — spawned-task
//! lists riding `TaskDone` events, per-round message scratch in bridge
//! forwarding, completion batches in the host-only model. Allocating
//! them per event shows up directly in the profiler's dispatch phase,
//! so the system recycles them instead: `get` hands back a cleared
//! buffer with its old capacity intact, `put` returns it. This
//! generalizes the ad-hoc `spawn_pool`/`vec_pool` fields the simulator
//! grew organically (DESIGN.md §3c).
//!
//! Determinism note: pooling only reuses *capacity*; every buffer is
//! cleared on `put`, so observable state is identical to fresh
//! allocation and goldens cannot see the pool.

/// A LIFO free list of `Vec<T>` buffers.
///
/// LIFO keeps the most recently used (cache-warm, grown-to-size)
/// buffer on top. The pool is bounded so a one-off burst cannot pin
/// its high-water mark of memory forever.
#[derive(Debug)]
pub struct BufPool<T> {
    free: Vec<Vec<T>>,
    cap: usize,
}

impl<T> Default for BufPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> BufPool<T> {
    /// Default bound on retained buffers: enough for every in-flight
    /// event class the system model produces per tick, small enough to
    /// be irrelevant memory-wise.
    const DEFAULT_CAP: usize = 64;

    /// Creates an empty pool with the default retention bound.
    pub fn new() -> Self {
        Self::with_cap(Self::DEFAULT_CAP)
    }

    /// Creates an empty pool retaining at most `cap` free buffers.
    pub fn with_cap(cap: usize) -> Self {
        BufPool {
            free: Vec::new(),
            cap,
        }
    }

    /// Takes a buffer from the pool (empty, capacity preserved from its
    /// last use) or allocates a fresh one.
    #[inline]
    pub fn get(&mut self) -> Vec<T> {
        self.free.pop().unwrap_or_default()
    }

    /// Returns a buffer to the pool. The buffer is cleared here, so
    /// callers may hand back leftovers; capacity is retained. Buffers
    /// beyond the retention bound are dropped.
    #[inline]
    pub fn put(&mut self, mut buf: Vec<T>) {
        if self.free.len() >= self.cap {
            return;
        }
        buf.clear();
        self.free.push(buf);
    }

    /// Number of free buffers currently retained.
    #[inline]
    pub fn idle(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_reuses_cleared_capacity() {
        let mut p: BufPool<u32> = BufPool::new();
        let mut v = p.get();
        v.extend([1, 2, 3]);
        let cap = v.capacity();
        p.put(v);
        assert_eq!(p.idle(), 1);
        let v = p.get();
        assert!(v.is_empty(), "pooled buffers must come back cleared");
        assert_eq!(v.capacity(), cap, "capacity survives the round trip");
        assert_eq!(p.idle(), 0);
    }

    #[test]
    fn lifo_returns_most_recent() {
        let mut p: BufPool<u8> = BufPool::new();
        let mut a = p.get();
        a.reserve_exact(10);
        let mut b = p.get();
        b.reserve_exact(100);
        let (ca, cb) = (a.capacity(), b.capacity());
        p.put(a);
        p.put(b);
        assert_eq!(p.get().capacity(), cb);
        assert_eq!(p.get().capacity(), ca);
    }

    #[test]
    fn retention_is_bounded() {
        let mut p: BufPool<u8> = BufPool::with_cap(2);
        for _ in 0..5 {
            p.put(Vec::with_capacity(8));
        }
        assert_eq!(p.idle(), 2, "excess buffers are dropped, not hoarded");
    }
}
