//! Conservation auditing for the simulated system.
//!
//! The auditor is an always-compiled, opt-in invariant engine: with
//! [`AuditLevel::Full`] the [`System`](crate::system::System) re-derives
//! its conservation laws from component state at every epoch boundary
//! (and at end-of-run); [`AuditLevel::Final`] checks only at
//! end-of-run; [`AuditLevel::Off`] skips the scans entirely. The checks
//! are purely observational — they read component state but never touch
//! the RNG, the event queue, or any counter the simulation consumes —
//! so results are bit-identical across levels.
//!
//! The laws checked (see `System::collect_violations`):
//!
//! - **Message conservation** — every message ever emitted is either
//!   delivered or still identifiable in flight (unit mailboxes and
//!   pending-out buffers, bridge scatter/backup/up-mailbox buffers, host
//!   scatter buffers, or scheduled delivery events).
//! - **`dataBorrowed` inclusivity** — a borrowed block at a unit has a
//!   matching rank-bridge entry, the rank entry is covered by a host
//!   entry when the block crossed ranks, the home unit's `isLent` bit is
//!   set, and no lent block is orphaned (unreachable through the tables
//!   and not in flight).
//! - **`toArrive` balance** — each bridge's correction counters equal
//!   the workload of scheduled tasks still in flight toward each child.
//! - **Ledger totals** — per-cause traffic ledger entries sum exactly to
//!   the system byte totals, and per-component energy sums to the
//!   reported total.
//! - **Bus sanity** — accumulated busy time never exceeds the horizon a
//!   bus has been driven to, and steal/lend budgets never go negative.

/// How much auditing a run performs. Part of
/// [`SystemConfig`](crate::config::SystemConfig); the default is
/// [`Full`](AuditLevel::Full) in debug builds (so `cargo test` audits
/// every run) and [`Off`](AuditLevel::Off) in release builds (opt back
/// in with `repro --audit`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AuditLevel {
    /// No invariant scans.
    Off,
    /// One scan at end-of-run.
    Final,
    /// A scan at every epoch boundary plus end-of-run.
    Full,
}

impl Default for AuditLevel {
    fn default() -> Self {
        if cfg!(debug_assertions) {
            AuditLevel::Full
        } else {
            AuditLevel::Off
        }
    }
}

impl AuditLevel {
    /// Whether epoch-boundary scans run.
    pub fn at_epochs(self) -> bool {
        self == AuditLevel::Full
    }

    /// Whether the end-of-run scan runs.
    pub fn at_end(self) -> bool {
        self >= AuditLevel::Final
    }
}

/// One violated conservation law, as reported by the system auditor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The law that failed (a stable short name, e.g.
    /// `"message-conservation"`).
    pub law: &'static str,
    /// Human-readable specifics: which component, which block, the
    /// numbers on both sides of the failed equation.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.law, self.detail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_tracks_build_profile() {
        let d = AuditLevel::default();
        if cfg!(debug_assertions) {
            assert_eq!(d, AuditLevel::Full);
        } else {
            assert_eq!(d, AuditLevel::Off);
        }
    }

    #[test]
    fn level_gates() {
        assert!(!AuditLevel::Off.at_end());
        assert!(!AuditLevel::Off.at_epochs());
        assert!(AuditLevel::Final.at_end());
        assert!(!AuditLevel::Final.at_epochs());
        assert!(AuditLevel::Full.at_end());
        assert!(AuditLevel::Full.at_epochs());
    }

    #[test]
    fn violation_displays_law_and_detail() {
        let v = Violation {
            law: "data-borrowed-inclusivity",
            detail: "block 7 at unit 3 has no bridge entry".to_string(),
        };
        let s = v.to_string();
        assert!(
            s.contains("data-borrowed-inclusivity") && s.contains("block 7"),
            "{s}"
        );
    }
}
