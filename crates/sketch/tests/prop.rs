//! Randomized tests for the hot-data sketch and reserved queue, driven
//! by the in-repo deterministic `SimRng`.

use ndpb_sim::SimRng;
use ndpb_sketch::{HotSketch, ReservedQueue, SketchConfig};

const CASES: usize = 48;

/// The sketch never tracks more entries than its geometry allows.
#[test]
fn sketch_respects_capacity() {
    let mut meta = SimRng::new(0x5C47_0001);
    for _ in 0..CASES {
        let buckets = 1 + meta.next_index(7);
        let entries = 1 + meta.next_index(7);
        let n = 1 + meta.next_index(499);
        let mut s = HotSketch::new(SketchConfig::with_geometry(buckets, entries));
        let mut rng = SimRng::new(meta.next_u64());
        for _ in 0..n {
            let k = meta.next_below(100);
            let w = 1 + meta.next_below(49);
            s.record(k, w, &mut rng);
            assert!(s.len() <= buckets * entries);
        }
    }
}

/// Without bucket pressure, the sketch counts exactly.
#[test]
fn sketch_exact_when_uncontended() {
    let mut meta = SimRng::new(0x5C47_0002);
    for _ in 0..CASES {
        // 8 keys over 1x16: one bucket, never full.
        let mut s = HotSketch::new(SketchConfig::with_geometry(1, 16));
        let mut rng = SimRng::new(meta.next_u64());
        let n = 1 + meta.next_index(199);
        let mut truth = std::collections::HashMap::new();
        for _ in 0..n {
            let k = meta.next_below(8);
            let w = 1 + meta.next_below(99);
            s.record(k, w, &mut rng);
            *truth.entry(k).or_insert(0u64) += w;
        }
        for (k, w) in truth {
            assert_eq!(s.get(k), Some(w));
        }
    }
}

/// pop_hottest returns entries in non-increasing workload order when
/// the sketch is drained without new inserts.
#[test]
fn pop_hottest_is_sorted() {
    let mut meta = SimRng::new(0x5C47_0003);
    for _ in 0..CASES {
        let mut s = HotSketch::new(SketchConfig::paper());
        let mut rng = SimRng::new(meta.next_u64());
        let n = 1 + meta.next_index(49);
        for i in 0..n {
            let k = 1 + meta.next_below(999);
            s.record(k, (i as u64 % 17) + 1, &mut rng);
        }
        let mut prev = u64::MAX;
        while let Some((_, w)) = s.pop_hottest() {
            assert!(w <= prev);
            prev = w;
        }
    }
}

/// Chunk accounting: chunks in use always equal the sum of each
/// list's ceil(len / tasks_per_chunk), and never exceed the pool.
#[test]
fn reserved_queue_chunk_invariant() {
    let mut rng = SimRng::new(0x5C47_0004);
    for _ in 0..CASES {
        let pool = 1 + rng.next_index(31);
        let per_chunk = 1 + rng.next_index(7);
        let n_ops = 1 + rng.next_index(299);
        let mut q: ReservedQueue<u32> = ReservedQueue::new(pool, per_chunk);
        let mut model: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for _ in 0..n_ops {
            let key = rng.next_below(16);
            if rng.chance(0.5) {
                if q.reserve(key, 0).is_ok() {
                    *model.entry(key).or_insert(0) += 1;
                }
            } else {
                let got = q.take(key);
                let want = model.remove(&key).unwrap_or(0);
                assert_eq!(got.len(), want);
            }
            let expect_chunks: usize = model.values().map(|&n| n.div_ceil(per_chunk).max(1)).sum();
            assert_eq!(q.chunks_used(), expect_chunks);
            assert!(q.chunks_used() <= pool);
            let expect_tasks: usize = model.values().sum();
            assert_eq!(q.total_tasks(), expect_tasks);
        }
    }
}
