//! Property-based tests for the hot-data sketch and reserved queue.

use ndpb_sim::SimRng;
use ndpb_sketch::{HotSketch, ReservedQueue, SketchConfig};
use proptest::prelude::*;

proptest! {
    /// The sketch never tracks more entries than its geometry allows.
    #[test]
    fn sketch_respects_capacity(
        keys in prop::collection::vec((0u64..100, 1u64..50), 1..500),
        buckets in 1usize..8,
        entries in 1usize..8,
        seed in any::<u64>(),
    ) {
        let mut s = HotSketch::new(SketchConfig::with_geometry(buckets, entries));
        let mut rng = SimRng::new(seed);
        for (k, w) in keys {
            s.record(k, w, &mut rng);
            prop_assert!(s.len() <= buckets * entries);
        }
    }

    /// Without bucket pressure, the sketch counts exactly.
    #[test]
    fn sketch_exact_when_uncontended(
        updates in prop::collection::vec((0u64..8, 1u64..100), 1..200),
        seed in any::<u64>(),
    ) {
        // 8 keys over 1x16: one bucket, never full.
        let mut s = HotSketch::new(SketchConfig::with_geometry(1, 16));
        let mut rng = SimRng::new(seed);
        let mut truth = std::collections::HashMap::new();
        for (k, w) in updates {
            s.record(k, w, &mut rng);
            *truth.entry(k).or_insert(0u64) += w;
        }
        for (k, w) in truth {
            prop_assert_eq!(s.get(k), Some(w));
        }
    }

    /// pop_hottest returns entries in non-increasing workload order when
    /// the sketch is drained without new inserts.
    #[test]
    fn pop_hottest_is_sorted(
        keys in prop::collection::vec(1u64..1000, 1..50),
        seed in any::<u64>(),
    ) {
        let mut s = HotSketch::new(SketchConfig::paper());
        let mut rng = SimRng::new(seed);
        for (i, &k) in keys.iter().enumerate() {
            s.record(k, (i as u64 % 17) + 1, &mut rng);
        }
        let mut prev = u64::MAX;
        while let Some((_, w)) = s.pop_hottest() {
            prop_assert!(w <= prev);
            prev = w;
        }
    }

    /// Chunk accounting: chunks in use always equal the sum of each
    /// list's ceil(len / tasks_per_chunk), and never exceed the pool.
    #[test]
    fn reserved_queue_chunk_invariant(
        ops in prop::collection::vec((0u64..16, any::<bool>()), 1..300),
        pool in 1usize..32,
        per_chunk in 1usize..8,
    ) {
        let mut q: ReservedQueue<u32> = ReservedQueue::new(pool, per_chunk);
        let mut model: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for (key, insert) in ops {
            if insert {
                if q.reserve(key, 0).is_ok() {
                    *model.entry(key).or_insert(0) += 1;
                }
            } else {
                let got = q.take(key);
                let want = model.remove(&key).unwrap_or(0);
                prop_assert_eq!(got.len(), want);
            }
            let expect_chunks: usize = model
                .values()
                .map(|&n| n.div_ceil(per_chunk).max(1))
                .sum();
            prop_assert_eq!(q.chunks_used(), expect_chunks);
            prop_assert!(q.chunks_used() <= pool);
            let expect_tasks: usize = model.values().sum();
            prop_assert_eq!(q.total_tasks(), expect_tasks);
        }
    }
}
