//! Randomized tests for the hot-data sketch and reserved queue, driven
//! by the in-repo deterministic `SimRng`.

use ndpb_sim::SimRng;
use ndpb_sketch::{HotSketch, ReservedQueue, SketchConfig};

const CASES: usize = 48;

/// The sketch never tracks more entries than its geometry allows.
#[test]
fn sketch_respects_capacity() {
    let mut meta = SimRng::new(0x5C47_0001);
    for _ in 0..CASES {
        let buckets = 1 + meta.next_index(7);
        let entries = 1 + meta.next_index(7);
        let n = 1 + meta.next_index(499);
        let mut s = HotSketch::new(SketchConfig::with_geometry(buckets, entries));
        let mut rng = SimRng::new(meta.next_u64());
        for _ in 0..n {
            let k = meta.next_below(100);
            let w = 1 + meta.next_below(49);
            s.record(k, w, &mut rng);
            assert!(s.len() <= buckets * entries);
        }
    }
}

/// Without bucket pressure, the sketch counts exactly.
#[test]
fn sketch_exact_when_uncontended() {
    let mut meta = SimRng::new(0x5C47_0002);
    for _ in 0..CASES {
        // 8 keys over 1x16: one bucket, never full.
        let mut s = HotSketch::new(SketchConfig::with_geometry(1, 16));
        let mut rng = SimRng::new(meta.next_u64());
        let n = 1 + meta.next_index(199);
        let mut truth = std::collections::HashMap::new();
        for _ in 0..n {
            let k = meta.next_below(8);
            let w = 1 + meta.next_below(99);
            s.record(k, w, &mut rng);
            *truth.entry(k).or_insert(0u64) += w;
        }
        for (k, w) in truth {
            assert_eq!(s.get(k), Some(w));
        }
    }
}

/// pop_hottest returns entries in non-increasing workload order when
/// the sketch is drained without new inserts.
#[test]
fn pop_hottest_is_sorted() {
    let mut meta = SimRng::new(0x5C47_0003);
    for _ in 0..CASES {
        let mut s = HotSketch::new(SketchConfig::paper());
        let mut rng = SimRng::new(meta.next_u64());
        let n = 1 + meta.next_index(49);
        for i in 0..n {
            let k = 1 + meta.next_below(999);
            s.record(k, (i as u64 % 17) + 1, &mut rng);
        }
        let mut prev = u64::MAX;
        while let Some((_, w)) = s.pop_hottest() {
            assert!(w <= prev);
            prev = w;
        }
    }
}

/// Capacity bounds and high-water marks: the queue never admits a task
/// that would push `chunks_used` past the pool, overflow leaves the
/// queue untouched, and the reported peaks match a reference model of
/// the occupancy trajectory.
#[test]
fn reserved_queue_capacity_bounds_and_peaks() {
    let mut rng = SimRng::new(0x5C47_0005);
    for _ in 0..CASES {
        let pool = 1 + rng.next_index(15);
        let per_chunk = 1 + rng.next_index(3);
        let mut q: ReservedQueue<u32> = ReservedQueue::new(pool, per_chunk);
        let mut model: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        let (mut peak_chunks, mut peak_tasks) = (0usize, 0usize);
        for op in 0..300u32 {
            let key = rng.next_below(8);
            if rng.chance(0.7) {
                let before = (q.chunks_used(), q.total_tasks());
                match q.reserve(key, op) {
                    Ok(()) => *model.entry(key).or_insert(0) += 1,
                    Err(back) => {
                        assert_eq!(back, op, "overflow must hand the task back");
                        assert_eq!(
                            (q.chunks_used(), q.total_tasks()),
                            before,
                            "overflow must not change occupancy"
                        );
                    }
                }
            } else {
                model.remove(&key);
                q.take(key);
            }
            assert!(q.chunks_used() <= pool, "pool bound violated");
            let tasks: usize = model.values().sum();
            peak_chunks = peak_chunks.max(q.chunks_used());
            peak_tasks = peak_tasks.max(tasks);
            assert_eq!(q.peak_chunks(), peak_chunks);
            assert_eq!(q.peak_tasks(), peak_tasks);
        }
        assert!(q.peak_chunks() <= pool);
    }
}

/// Hot-key retention: with an uncontended sketch (exact counts), the
/// key the sketch reports hottest holds every task reserved under it,
/// in reservation order — parking by block and leaving together is the
/// whole point of the reserved queue.
#[test]
fn reserved_queue_retains_hot_key_tasks_vs_sketch_estimates() {
    let mut meta = SimRng::new(0x5C47_0006);
    for _ in 0..CASES {
        // 1x16 over ≤ 8 keys: one never-full bucket, so HeavyGuardian
        // estimates are exact and "hottest" is unambiguous ground truth.
        let mut s = HotSketch::new(SketchConfig::with_geometry(1, 16));
        let mut q: ReservedQueue<u32> = ReservedQueue::new(64, 4);
        let mut rng = SimRng::new(meta.next_u64());
        let mut truth: std::collections::HashMap<u64, (u64, Vec<u32>)> =
            std::collections::HashMap::new();
        let n = 1 + meta.next_index(149);
        for i in 0..n as u32 {
            let k = meta.next_below(8);
            let w = 1 + meta.next_below(99);
            s.record(k, w, &mut rng);
            let e = truth.entry(k).or_default();
            e.0 += w;
            if q.reserve(k, i).is_ok() {
                e.1.push(i);
            }
        }
        // The sketch estimate matches the true workload for every key...
        for (k, (w, _)) in &truth {
            assert_eq!(s.get(*k), Some(*w));
        }
        // ...and taking the hottest key releases exactly its tasks, in
        // reservation order.
        let (hot, est) = s.pop_hottest().expect("nonempty sketch");
        let (true_w, expect_tasks) = truth.remove(&hot).expect("hot key was recorded");
        assert_eq!(est, true_w);
        assert_eq!(q.take(hot), expect_tasks);
        for (k, (_, tasks)) in truth {
            assert_eq!(q.take(k), tasks, "cold keys keep their tasks too");
        }
    }
}

/// drain_all is complete and deterministic: ascending key order,
/// reservation order within a key, and it resets the occupancy.
#[test]
fn reserved_queue_drain_order() {
    let mut rng = SimRng::new(0x5C47_0007);
    for _ in 0..CASES {
        let mut q: ReservedQueue<(u64, u32)> = ReservedQueue::new(256, 2);
        let mut model: std::collections::HashMap<u64, Vec<(u64, u32)>> =
            std::collections::HashMap::new();
        let n = 1 + rng.next_index(199);
        for i in 0..n as u32 {
            let k = rng.next_below(32);
            if q.reserve(k, (k, i)).is_ok() {
                model.entry(k).or_default().push((k, i));
            }
        }
        let mut keys: Vec<u64> = model.keys().copied().collect();
        keys.sort_unstable();
        let expect: Vec<(u64, u32)> = keys.into_iter().flat_map(|k| model[&k].clone()).collect();
        assert_eq!(q.drain_all(), expect);
        assert!(q.is_empty());
        assert_eq!(q.chunks_used(), 0);
        assert_eq!(q.total_tasks(), 0);
    }
}

/// Chunk accounting: chunks in use always equal the sum of each
/// list's ceil(len / tasks_per_chunk), and never exceed the pool.
#[test]
fn reserved_queue_chunk_invariant() {
    let mut rng = SimRng::new(0x5C47_0004);
    for _ in 0..CASES {
        let pool = 1 + rng.next_index(31);
        let per_chunk = 1 + rng.next_index(7);
        let n_ops = 1 + rng.next_index(299);
        let mut q: ReservedQueue<u32> = ReservedQueue::new(pool, per_chunk);
        let mut model: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for _ in 0..n_ops {
            let key = rng.next_below(16);
            if rng.chance(0.5) {
                if q.reserve(key, 0).is_ok() {
                    *model.entry(key).or_insert(0) += 1;
                }
            } else {
                let got = q.take(key);
                let want = model.remove(&key).unwrap_or(0);
                assert_eq!(got.len(), want);
            }
            let expect_chunks: usize = model.values().map(|&n| n.div_ceil(per_chunk).max(1)).sum();
            assert_eq!(q.chunks_used(), expect_chunks);
            assert!(q.chunks_used() <= pool);
            let expect_tasks: usize = model.values().sum();
            assert_eq!(q.total_tasks(), expect_tasks);
        }
    }
}
