//! The HeavyGuardian-style hot-block sketch.

use ndpb_sim::SimRng;

/// Sketch geometry and decay parameters (Table I defaults: 16 buckets ×
/// 16 entries, 1-byte workload counters, b = 1.08).
#[derive(Debug, Clone, PartialEq)]
pub struct SketchConfig {
    /// Number of buckets (indexed by block address).
    pub buckets: usize,
    /// Entries per bucket.
    pub entries_per_bucket: usize,
    /// Exponential decay base: the minimum entry decays with probability
    /// `base^-workload` (HeavyGuardian's proven-optimal 1.08).
    pub decay_base: f64,
    /// Saturation cap for the per-entry workload counter (1 byte in
    /// hardware scaled to workload units; large cap in the model).
    pub counter_cap: u64,
}

impl SketchConfig {
    /// The paper's Table I configuration.
    pub fn paper() -> Self {
        SketchConfig {
            buckets: 16,
            entries_per_bucket: 16,
            decay_base: 1.08,
            counter_cap: u64::MAX,
        }
    }

    /// A variant with different geometry (Figure 16c/d sweeps).
    pub fn with_geometry(buckets: usize, entries_per_bucket: usize) -> Self {
        SketchConfig {
            buckets,
            entries_per_bucket,
            ..Self::paper()
        }
    }
}

impl Default for SketchConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    key: u64,
    workload: u64,
}

/// Tracks the hottest data blocks of one NDP unit by accumulated task
/// workload.
///
/// Keys are opaque `u64`s (block addresses). The structure is
/// deterministic given the RNG passed to [`HotSketch::record`].
///
/// # Example
///
/// ```
/// use ndpb_sketch::{HotSketch, SketchConfig};
/// use ndpb_sim::SimRng;
///
/// let mut s = HotSketch::new(SketchConfig::paper());
/// let mut rng = SimRng::new(1);
/// for _ in 0..100 { s.record(42, 10, &mut rng); }
/// s.record(7, 1, &mut rng);
/// assert_eq!(s.hottest(), Some((42, 1000)));
/// ```
#[derive(Debug, Clone)]
pub struct HotSketch {
    config: SketchConfig,
    buckets: Vec<Vec<Entry>>,
    /// Memo of `decay_base.powf(-wl)` for small `wl` (the common case:
    /// workloads repeat constantly). `powf` is a libm call on the
    /// per-enqueue path; caching the exact value it returned keeps the
    /// decay probabilities bit-identical while skipping the recompute.
    decay_memo: Vec<f64>,
}

impl HotSketch {
    /// Creates an empty sketch.
    ///
    /// # Panics
    ///
    /// Panics if the configured geometry is zero-sized.
    pub fn new(config: SketchConfig) -> Self {
        assert!(
            config.buckets > 0 && config.entries_per_bucket > 0,
            "sketch must have positive geometry"
        );
        // Buckets start with no capacity: a `System` builds one sketch
        // per unit even for designs that never touch it, so all heap
        // growth is deferred to first use.
        let buckets = vec![Vec::new(); config.buckets];
        HotSketch {
            config,
            buckets,
            decay_memo: Vec::new(),
        }
    }

    /// `decay_base^(-wl)`, memoized for small `wl`. Values are computed
    /// by the same `powf` call either way, so the memo is invisible to
    /// the decay outcome.
    fn decay_probability(&mut self, wl: u64) -> f64 {
        let base = self.config.decay_base;
        if wl >= 1024 {
            return base.powf(-(wl as f64));
        }
        if self.decay_memo.is_empty() {
            self.decay_memo.resize(1024, f64::NAN);
        }
        let slot = &mut self.decay_memo[wl as usize];
        if slot.is_nan() {
            *slot = base.powf(-(wl as f64));
        }
        *slot
    }

    fn bucket_of(&self, key: u64) -> usize {
        // Multiplicative hash; the paper indexes by data address. Runs
        // on every task enqueue, so the reduction to a bucket index is
        // a mask instead of a hardware divide for power-of-two bucket
        // counts (the Table I default of 16 included) — bit-identical
        // to the modulo it replaces.
        let h = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize;
        let n = self.config.buckets;
        if n.is_power_of_two() {
            h & (n - 1)
        } else {
            h % n
        }
    }

    /// Records a task of `workload` on block `key` (called on every task
    /// enqueue). On a full-bucket miss, applies HeavyGuardian decay to
    /// the bucket's minimum entry using `rng`.
    pub fn record(&mut self, key: u64, workload: u64, rng: &mut SimRng) {
        let cap = self.config.counter_cap;
        let per = self.config.entries_per_bucket;
        let b = self.bucket_of(key);
        let bucket = &mut self.buckets[b];

        if let Some(e) = bucket.iter_mut().find(|e| e.key == key) {
            e.workload = e.workload.saturating_add(workload).min(cap);
            return;
        }
        if bucket.len() < per {
            bucket.push(Entry {
                key,
                workload: workload.min(cap),
            });
            return;
        }
        // Miss on a full bucket: probabilistically decay the minimum.
        let (min_idx, min_wl) = bucket
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.workload)
            .map(|(i, e)| (i, e.workload))
            .expect("bucket is non-empty");
        let p = self.decay_probability(min_wl);
        if rng.chance(p) {
            let bucket = &mut self.buckets[b];
            if min_wl <= workload {
                bucket[min_idx] = Entry {
                    key,
                    workload: workload.min(cap),
                };
            } else {
                bucket[min_idx].workload = min_wl - workload;
            }
        }
    }

    /// The hottest tracked `(key, workload)`, if any.
    pub fn hottest(&self) -> Option<(u64, u64)> {
        self.buckets
            .iter()
            .flatten()
            .max_by_key(|e| e.workload)
            .map(|e| (e.key, e.workload))
    }

    /// Removes and returns the hottest entry (step ② of the load
    /// balancing workflow extracts hot blocks one at a time).
    pub fn pop_hottest(&mut self) -> Option<(u64, u64)> {
        let (b, i) = self
            .buckets
            .iter()
            .enumerate()
            .flat_map(|(b, v)| v.iter().enumerate().map(move |(i, e)| (b, i, e.workload)))
            .max_by_key(|&(_, _, w)| w)
            .map(|(b, i, _)| (b, i))?;
        let e = self.buckets[b].swap_remove(i);
        Some((e.key, e.workload))
    }

    /// Removes a specific key (e.g. when its block migrates away).
    pub fn remove(&mut self, key: u64) -> Option<u64> {
        let b = self.bucket_of(key);
        let bucket = &mut self.buckets[b];
        let i = bucket.iter().position(|e| e.key == key)?;
        Some(bucket.swap_remove(i).workload)
    }

    /// The tracked workload of `key`, if present.
    pub fn get(&self, key: u64) -> Option<u64> {
        let b = self.bucket_of(key);
        self.buckets[b]
            .iter()
            .find(|e| e.key == key)
            .map(|e| e.workload)
    }

    /// Number of tracked entries.
    pub fn len(&self) -> usize {
        self.buckets.iter().map(Vec::len).sum()
    }

    /// Whether nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clears all entries.
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
    }

    /// SRAM bytes this sketch occupies (58-bit addresses + 1-byte
    /// counters per entry, per the paper ⇒ 8 B rounded entries).
    pub fn sram_bytes(&self) -> usize {
        self.config.buckets * self.config.entries_per_bucket * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(0xBEEF)
    }

    #[test]
    fn accumulates_on_hit() {
        let mut s = HotSketch::new(SketchConfig::paper());
        let mut r = rng();
        s.record(5, 10, &mut r);
        s.record(5, 7, &mut r);
        assert_eq!(s.get(5), Some(17));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn hottest_finds_max() {
        let mut s = HotSketch::new(SketchConfig::paper());
        let mut r = rng();
        for k in 0..50u64 {
            s.record(k, k + 1, &mut r);
        }
        let (k, w) = s.hottest().unwrap();
        assert_eq!((k, w), (49, 50));
    }

    #[test]
    fn pop_hottest_removes() {
        let mut s = HotSketch::new(SketchConfig::paper());
        let mut r = rng();
        s.record(1, 100, &mut r);
        s.record(2, 5, &mut r);
        assert_eq!(s.pop_hottest(), Some((1, 100)));
        assert_eq!(s.pop_hottest(), Some((2, 5)));
        assert_eq!(s.pop_hottest(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn heavy_hitter_survives_noise() {
        // One hot key with large workload vs. a stream of cold keys that
        // all collide into the same 1×4 sketch.
        let cfg = SketchConfig::with_geometry(1, 4);
        let mut s = HotSketch::new(cfg);
        let mut r = rng();
        for _ in 0..200 {
            s.record(999, 50, &mut r);
        }
        for k in 0..2000u64 {
            s.record(k, 1, &mut r);
        }
        assert_eq!(s.hottest().map(|(k, _)| k), Some(999));
    }

    #[test]
    fn decay_eventually_replaces_cold_entries() {
        let cfg = SketchConfig::with_geometry(1, 1);
        let mut s = HotSketch::new(cfg);
        let mut r = rng();
        s.record(1, 1, &mut r); // cold occupant
        for _ in 0..100 {
            s.record(2, 10, &mut r); // persistent challenger
        }
        // With w=1 occupant and p = 1.08^-1 ≈ 0.93, replacement is near
        // certain within 100 tries.
        assert_eq!(s.hottest().map(|(k, _)| k), Some(2));
    }

    #[test]
    fn remove_specific_key() {
        let mut s = HotSketch::new(SketchConfig::paper());
        let mut r = rng();
        s.record(10, 3, &mut r);
        assert_eq!(s.remove(10), Some(3));
        assert_eq!(s.remove(10), None);
    }

    #[test]
    fn clear_empties() {
        let mut s = HotSketch::new(SketchConfig::paper());
        let mut r = rng();
        for k in 0..10u64 {
            s.record(k, 1, &mut r);
        }
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.hottest(), None);
    }

    #[test]
    fn paper_sram_budget_is_2kb() {
        let s = HotSketch::new(SketchConfig::paper());
        assert_eq!(s.sram_bytes(), 2048);
    }

    #[test]
    #[should_panic(expected = "positive geometry")]
    fn zero_geometry_panics() {
        HotSketch::new(SketchConfig::with_geometry(0, 4));
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut s = HotSketch::new(SketchConfig::with_geometry(2, 2));
            let mut r = SimRng::new(7);
            for i in 0..1000u64 {
                s.record(i % 37, (i % 5) + 1, &mut r);
            }
            let mut entries = Vec::new();
            let mut sc = s.clone();
            while let Some(e) = sc.pop_hottest() {
                entries.push(e);
            }
            entries
        };
        assert_eq!(run(), run());
    }
}
