//! Hot-data identification for data-transfer-aware load balancing.
//!
//! Section VI-C of the paper: stealing tasks bound to *hot* data blocks
//! moves more work per migrated byte. Each NDP unit tracks per-block
//! accumulated task workload with a simplified HeavyGuardian-style
//! sketch ([`HotSketch`]): a set-associative array of buckets whose
//! entries hold `(block address, workload)`. On a miss with a full
//! bucket, the minimum entry decays with probability `b^-workload`
//! (b = 1.08) and is replaced when its counter underflows.
//!
//! The tasks associated with sketched blocks are parked in an in-DRAM
//! *reserved queue* ([`ReservedQueue`]) organized as linked chunk lists
//! of `G_xfer` bytes (1280 chunks ≈ 10 000 tasks per unit), so that when
//! a block is chosen for migration its tasks leave with it.

#![warn(missing_docs)]

pub mod reserved;
pub mod sketch;

pub use reserved::ReservedQueue;
pub use sketch::{HotSketch, SketchConfig};
