//! The in-DRAM reserved task queue (Figure 9, right).
//!
//! Tasks whose data block is tracked by the sketch are parked here,
//! grouped by block, so a chosen hot block can leave together with all
//! its tasks. Storage is accounted in fixed-size chunks (`G_xfer` bytes,
//! ~8 tasks each, 1280 chunks per unit by default); when the chunk pool
//! is exhausted, further tasks overflow to the normal task queue.

use std::collections::HashMap;

/// A chunked, per-key task store with a bounded chunk pool.
///
/// # Example
///
/// ```
/// use ndpb_sketch::ReservedQueue;
/// let mut q: ReservedQueue<&str> = ReservedQueue::new(4, 2);
/// q.reserve(7, "a").unwrap();
/// q.reserve(7, "b").unwrap();
/// assert_eq!(q.take(7), vec!["a", "b"]);
/// ```
#[derive(Debug, Clone)]
pub struct ReservedQueue<T> {
    chunk_pool: usize,
    tasks_per_chunk: usize,
    lists: HashMap<u64, Vec<T>>,
    chunks_used: usize,
    tasks_parked: usize,
    peak_chunks: usize,
    peak_tasks: usize,
    hits: u64,
    overflows: u64,
}

impl<T> ReservedQueue<T> {
    /// Creates a queue with `chunk_pool` chunks of `tasks_per_chunk`
    /// tasks each.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(chunk_pool: usize, tasks_per_chunk: usize) -> Self {
        assert!(chunk_pool > 0 && tasks_per_chunk > 0);
        ReservedQueue {
            chunk_pool,
            tasks_per_chunk,
            lists: HashMap::new(),
            chunks_used: 0,
            tasks_parked: 0,
            peak_chunks: 0,
            peak_tasks: 0,
            hits: 0,
            overflows: 0,
        }
    }

    /// The paper's default: 1280 chunks of `G_xfer` = 256 bytes, about
    /// 8 tasks (32 B records) per chunk ⇒ roughly 10 000 tasks.
    pub fn paper_default() -> Self {
        Self::new(1280, 8)
    }

    fn chunks_for(&self, tasks: usize) -> usize {
        // Every key holds at least its statically assigned chunk.
        tasks.div_ceil(self.tasks_per_chunk).max(1)
    }

    /// Parks `task` under `key`.
    ///
    /// # Errors
    ///
    /// Returns the task back if admitting it would exceed the chunk
    /// pool; the caller should fall back to the normal task queue.
    pub fn reserve(&mut self, key: u64, task: T) -> Result<(), T> {
        let cur_len = self.lists.get(&key).map_or(0, Vec::len);
        let cur_chunks = if cur_len == 0 && !self.lists.contains_key(&key) {
            0
        } else {
            self.chunks_for(cur_len)
        };
        let new_chunks = self.chunks_for(cur_len + 1);
        let extra = new_chunks - cur_chunks;
        if self.chunks_used + extra > self.chunk_pool {
            self.overflows += 1;
            return Err(task);
        }
        self.chunks_used += extra;
        self.tasks_parked += 1;
        self.peak_chunks = self.peak_chunks.max(self.chunks_used);
        self.peak_tasks = self.peak_tasks.max(self.tasks_parked);
        self.lists.entry(key).or_default().push(task);
        self.hits += 1;
        Ok(())
    }

    /// High-water mark of chunks in use over the queue's lifetime (the
    /// occupancy figure buffer-sizing reports want).
    pub fn peak_chunks(&self) -> usize {
        self.peak_chunks
    }

    /// High-water mark of tasks parked at once.
    pub fn peak_tasks(&self) -> usize {
        self.peak_tasks
    }

    /// Tasks successfully parked over the queue's lifetime (the
    /// reserved-queue *hit* count the metrics registry reports).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Tasks bounced to the normal queue because the chunk pool was
    /// exhausted.
    pub fn overflows(&self) -> u64 {
        self.overflows
    }

    /// Removes and returns all tasks parked under `key`, freeing its
    /// chunks. Returns an empty vector for unknown keys.
    pub fn take(&mut self, key: u64) -> Vec<T> {
        match self.lists.remove(&key) {
            Some(v) => {
                self.chunks_used -= self.chunks_for(v.len());
                self.tasks_parked -= v.len();
                v
            }
            None => Vec::new(),
        }
    }

    /// Number of tasks parked under `key`.
    pub fn len_of(&self, key: u64) -> usize {
        self.lists.get(&key).map_or(0, Vec::len)
    }

    /// Total parked tasks.
    pub fn total_tasks(&self) -> usize {
        self.lists.values().map(Vec::len).sum()
    }

    /// Chunks currently allocated.
    pub fn chunks_used(&self) -> usize {
        self.chunks_used
    }

    /// Whether no tasks are parked.
    pub fn is_empty(&self) -> bool {
        self.lists.is_empty()
    }

    /// Drains every list (used at epoch barriers), returning all tasks.
    pub fn drain_all(&mut self) -> Vec<T> {
        self.chunks_used = 0;
        self.tasks_parked = 0;
        let mut keys: Vec<u64> = self.lists.keys().copied().collect();
        keys.sort_unstable(); // deterministic order
        let mut out = Vec::new();
        for k in keys {
            out.extend(self.lists.remove(&k).expect("key exists"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_take() {
        let mut q = ReservedQueue::new(10, 2);
        q.reserve(1, 'a').unwrap();
        q.reserve(1, 'b').unwrap();
        q.reserve(2, 'c').unwrap();
        assert_eq!(q.len_of(1), 2);
        assert_eq!(q.total_tasks(), 3);
        assert_eq!(q.take(1), vec!['a', 'b']);
        assert_eq!(q.len_of(1), 0);
        assert_eq!(q.total_tasks(), 1);
    }

    #[test]
    fn chunk_accounting_grows_and_frees() {
        let mut q = ReservedQueue::new(10, 2);
        q.reserve(1, 0u32).unwrap();
        assert_eq!(q.chunks_used(), 1);
        q.reserve(1, 1).unwrap();
        assert_eq!(q.chunks_used(), 1); // still fits one chunk
        q.reserve(1, 2).unwrap();
        assert_eq!(q.chunks_used(), 2); // linked a second chunk
        q.take(1);
        assert_eq!(q.chunks_used(), 0);
    }

    #[test]
    fn pool_exhaustion_returns_task() {
        let mut q = ReservedQueue::new(2, 1);
        q.reserve(1, 'a').unwrap();
        q.reserve(2, 'b').unwrap();
        let back = q.reserve(3, 'c');
        assert_eq!(back, Err('c'));
        // Appending to an existing key that needs a new chunk also fails.
        let back = q.reserve(1, 'd');
        assert_eq!(back, Err('d'));
        assert_eq!(q.hits(), 2);
        assert_eq!(q.overflows(), 2);
    }

    #[test]
    fn take_unknown_key_is_empty() {
        let mut q: ReservedQueue<u8> = ReservedQueue::new(4, 4);
        assert!(q.take(99).is_empty());
    }

    #[test]
    fn drain_all_is_deterministic_and_complete() {
        let mut q = ReservedQueue::new(16, 2);
        q.reserve(5, 50).unwrap();
        q.reserve(1, 10).unwrap();
        q.reserve(5, 51).unwrap();
        q.reserve(3, 30).unwrap();
        assert_eq!(q.drain_all(), vec![10, 30, 50, 51]);
        assert!(q.is_empty());
        assert_eq!(q.chunks_used(), 0);
    }

    #[test]
    fn paper_default_capacity() {
        let q: ReservedQueue<u8> = ReservedQueue::paper_default();
        assert_eq!(q.chunk_pool, 1280);
        assert_eq!(q.tasks_per_chunk, 8);
    }

    #[test]
    #[should_panic]
    fn zero_pool_panics() {
        ReservedQueue::<u8>::new(0, 1);
    }
}
