//! Quickstart: simulate one application on the four Table II designs.
//!
//! ```text
//! cargo run --release --example quickstart [app] [scale]
//! ```
//!
//! `app` is one of `ll ht tree spmv bfs sssp pr wcc` (default `tree`),
//! `scale` one of `tiny small full` (default `tiny`).

use ndpbridge::core::config::SystemConfig;
use ndpbridge::core::design::DesignPoint;
use ndpbridge::core::hostonly::{HostOnly, HostOnlyConfig};
use ndpbridge::core::System;
use ndpbridge::workloads::{build_app, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let app_name = args.get(1).map(String::as_str).unwrap_or("tree");
    let scale = match args.get(2).map(String::as_str) {
        Some("small") => Scale::Small,
        Some("full") => Scale::Full,
        _ => Scale::Tiny,
    };

    println!("NDPBridge quickstart: app={app_name}, Table I system (512 units)");
    println!();

    let mut baseline = None;
    for design in DesignPoint::table2() {
        let cfg = SystemConfig::table1();
        let app = build_app(app_name, &cfg.geometry, scale, cfg.seed);
        let start = std::time::Instant::now();
        let result = System::new(cfg, design, app).run();
        let host = start.elapsed();
        let speedup = match &baseline {
            None => 1.0,
            Some(b) => result.speedup_over(b),
        };
        if baseline.is_none() {
            baseline = Some(result.clone());
        }
        println!(
            "{}   speedup over C: {:.2}x   (simulated in {:.1?}, {} events)",
            result.row(),
            speedup,
            host,
            result.events
        );
        println!(
            "    lb_rounds={} blocks_migrated={} rerouted={} msgs={} max_unit={:.1}us",
            result.lb_rounds,
            result.blocks_migrated,
            result.tasks_rerouted,
            result.messages_delivered,
            result.max_unit_time.as_ns() / 1000.0
        );
    }

    // The non-NDP host baseline for context (Figure 11's H).
    let cfg = SystemConfig::table1();
    let app = build_app(app_name, &cfg.geometry, scale, cfg.seed);
    let h = HostOnly::new(cfg, HostOnlyConfig::paper(), app).run();
    println!(
        "{}   speedup over C: {:.2}x",
        h.row(),
        h.speedup_over(baseline.as_ref().expect("C ran first")),
    );
}
