//! Anatomy of a load-balancing run: compare B (no balancing) and O
//! (data-transfer-aware balancing) on one skewed workload and show what
//! the balancer actually did — migrations, re-routes, traffic, and the
//! resulting max-vs-average execution-time gap the paper's Figure 2
//! highlights.
//!
//! ```text
//! cargo run --release --example load_balance_anatomy [app]
//! ```

use ndpbridge::core::config::SystemConfig;
use ndpbridge::core::design::DesignPoint;
use ndpbridge::core::{RunResult, System};
use ndpbridge::workloads::{build_app, Scale};

fn bar(frac: f64, width: usize) -> String {
    let n = (frac.clamp(0.0, 1.0) * width as f64).round() as usize;
    format!("{}{}", "#".repeat(n), ".".repeat(width - n))
}

fn describe(r: &RunResult) {
    println!("design {}:", r.design);
    println!(
        "  total time (slowest unit) : {:>10.1} us  {}",
        r.makespan.as_ns() / 1000.0,
        bar(1.0, 40)
    );
    println!(
        "  average unit exec time    : {:>10.1} us  {}",
        r.avg_unit_time.as_ns() / 1000.0,
        bar(r.balance, 40)
    );
    println!(
        "  balance (avg/max)         : {:>10.1} %",
        r.balance * 100.0
    );
    println!(
        "  wait share of total       : {:>10.1} %",
        r.wait_fraction * 100.0
    );
    println!("  tasks executed            : {:>10}", r.tasks_executed);
    println!("  messages delivered        : {:>10}", r.messages_delivered);
    println!("  blocks migrated           : {:>10}", r.blocks_migrated);
    println!("  tasks re-routed           : {:>10}", r.tasks_rerouted);
    println!("  LB rounds                 : {:>10}", r.lb_rounds);
    println!(
        "  intra-rank traffic        : {:>10} KB",
        r.rank_bus_bytes / 1024
    );
    println!(
        "  channel traffic           : {:>10} KB",
        r.channel_bytes / 1024
    );
    println!(
        "  energy                    : {:>10.1} uJ",
        r.energy.total_pj() / 1e6
    );
    println!("  busy-time Gini            : {:>10.3}", r.busy_gini());
    let h = r.busy_histogram();
    println!("  units by busy fraction (0-100% of total time):");
    for (i, &n) in h.iter().enumerate() {
        println!(
            "    {:>3}-{:>3}% |{}",
            i * 10,
            (i + 1) * 10,
            "#".repeat(((n as f64).sqrt() as usize).min(60))
        );
    }
    println!();
}

fn main() {
    let app_name = std::env::args().nth(1).unwrap_or_else(|| "spmv".into());
    println!("Load-balancing anatomy on {app_name:?} (Table I system, Small scale)\n");

    let mut results = Vec::new();
    for design in [DesignPoint::B, DesignPoint::O] {
        let cfg = SystemConfig::table1();
        let app = build_app(&app_name, &cfg.geometry, Scale::Small, cfg.seed);
        let r = System::new(cfg, design, app).run();
        describe(&r);
        results.push(r);
    }
    let (b, o) = (&results[0], &results[1]);
    assert_eq!(
        b.checksum, o.checksum,
        "load balancing must not change application results"
    );
    println!(
        "O over B: {:.2}x speedup; balance {:.1}% -> {:.1}%; results identical (checksum {:#x})",
        o.speedup_over(b),
        b.balance * 100.0,
        o.balance * 100.0,
        o.checksum
    );
}
