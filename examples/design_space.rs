//! Design-space exploration: run every application on every design
//! point (including ablations) and print a speedup matrix — a compact
//! version of the paper's Figures 10 and 14a.
//!
//! ```text
//! cargo run --release --example design_space [tiny|small|full]
//! ```

use ndpbridge::core::config::SystemConfig;
use ndpbridge::core::design::DesignPoint;
use ndpbridge::core::result::geomean;
use ndpbridge::core::System;
use ndpbridge::workloads::{build_app, Scale, APP_NAMES};

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("small") => Scale::Small,
        Some("full") => Scale::Full,
        _ => Scale::Tiny,
    };
    let designs = [
        DesignPoint::C,
        DesignPoint::B,
        DesignPoint::W,
        DesignPoint::WAdv,
        DesignPoint::WFine,
        DesignPoint::WHot,
        DesignPoint::O,
        DesignPoint::R,
    ];

    print!("{:<8}", "app");
    for d in designs {
        print!("{:>9}", d.to_string());
    }
    println!("   (speedup over C)");

    let mut per_design: Vec<Vec<f64>> = vec![Vec::new(); designs.len()];
    for app_name in APP_NAMES {
        // Run all designs for one app in parallel threads.
        let results: Vec<_> = std::thread::scope(|s| {
            designs
                .iter()
                .map(|&d| {
                    s.spawn(move || {
                        let cfg = SystemConfig::table1();
                        let app = build_app(app_name, &cfg.geometry, scale, cfg.seed);
                        System::new(cfg, d, app).run()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("simulation panicked"))
                .collect()
        });
        print!("{app_name:<8}");
        for (j, r) in results.iter().enumerate() {
            let s = r.speedup_over(&results[0]);
            per_design[j].push(s);
            print!("{s:>8.2}x");
        }
        println!();
    }
    print!("{:<8}", "geomean");
    for col in &per_design {
        print!("{:>8.2}x", geomean(col));
    }
    println!();
}
